"""Format-v2 artifacts: persisted transformers, v1 back-compat, original-space serving."""

import json

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.serving import (
    ArtifactError,
    SynthesisService,
    load_artifact,
    load_transformer,
    read_manifest,
    save_artifact,
)
from repro.serving.cli import main
from repro.transforms import TableTransformer


@pytest.fixture(scope="module")
def mixed_release(tmp_path_factory):
    """(artifact path, dataset, transformer, model) for a PrivBayes release."""
    from repro.models import PrivBayes

    dataset = load_dataset("adult_mixed", n_samples=400, random_state=0)
    transformer = TableTransformer(dataset.schema).fit(dataset.X_train)
    model = PrivBayes(epsilon=1.0, random_state=0).fit(
        transformer.transform(dataset.X_train), dataset.y_train
    )
    path = tmp_path_factory.mktemp("mixed") / "privbayes-mixed"
    save_artifact(model, path, name="privbayes-mixed", transformer=transformer)
    return path, dataset, transformer, model


class TestTransformerPersistence:
    def test_manifest_records_config_and_npz_holds_state(self, mixed_release):
        path, dataset, transformer, _ = mixed_release
        manifest = read_manifest(path)
        assert manifest["format_version"] == 2
        assert manifest["transformer"] == transformer.get_config()
        assert (path / "transformer.npz").is_file()
        with np.load(path / "transformer.npz", allow_pickle=False) as archive:
            assert set(archive.files) == set(transformer.state_dict())

    def test_load_transformer_round_trips_bitwise(self, mixed_release):
        path, dataset, transformer, _ = mixed_release
        restored = load_transformer(path)
        assert restored.schema == transformer.schema
        encoded = transformer.transform(dataset.X_test)
        assert np.array_equal(restored.transform(dataset.X_test), encoded)
        assert (
            restored.inverse_transform(encoded)
            == transformer.inverse_transform(encoded)
        ).all()

    def test_artifacts_without_transformer_return_none(self, tmp_path):
        from repro.models import PrivBayes

        X = np.random.default_rng(0).random((80, 4))
        path = save_artifact(PrivBayes(epsilon=1.0, random_state=0).fit(X), tmp_path / "plain")
        assert read_manifest(path)["transformer"] is None
        assert load_transformer(path) is None

    def test_declared_but_missing_state_file_is_an_explicit_error(self, mixed_release, tmp_path):
        import shutil

        path, *_ = mixed_release
        broken = tmp_path / "broken"
        shutil.copytree(path, broken)
        (broken / "transformer.npz").unlink()
        with pytest.raises(ArtifactError, match="transformer.npz is missing"):
            load_transformer(broken)


class TestFormatV1BackCompat:
    def test_old_artifacts_still_load(self, mixed_release, tmp_path):
        # A v1 artifact is exactly a v2 artifact minus the transformer
        # machinery; rewriting the manifest back to the old shape must load.
        import shutil

        path, *_ = mixed_release
        old = tmp_path / "v1-artifact"
        shutil.copytree(path, old)
        (old / "transformer.npz").unlink()
        manifest = json.loads((old / "manifest.json").read_text())
        manifest["format_version"] = 1
        del manifest["transformer"]
        (old / "manifest.json").write_text(json.dumps(manifest))

        model = load_artifact(old)
        assert load_transformer(old) is None
        reference = load_artifact(path)
        assert np.array_equal(
            model.sample(30, rng=np.random.default_rng(2)),
            reference.sample(30, rng=np.random.default_rng(2)),
        )


class TestOriginalSpaceService:
    def test_stream_decodes_chunks_and_respects_chunking(self, mixed_release):
        path, dataset, transformer, model = mixed_release
        service = SynthesisService()
        chunks = list(
            service.stream(path, 70, seed=9, chunk_size=32, original_space=True)
        )
        assert [len(chunk) for chunk in chunks] == [32, 32, 6]
        decoded = np.vstack(chunks)
        assert decoded.dtype == object
        workclass = set(decoded[:, dataset.schema.index_of("workclass")])
        assert workclass <= set(dataset.schema["workclass"].categories)
        # Same request in model space, decoded manually, is bit-identical.
        service_model_space = SynthesisService()
        raw = np.vstack(
            list(service_model_space.stream(path, 70, seed=9, chunk_size=32))
        )
        assert (decoded == transformer.inverse_transform(raw)).all()

    def test_stream_labeled_decodes_features_and_keeps_labels(self, mixed_release):
        path, dataset, *_ = mixed_release
        service = SynthesisService()
        X_chunks, y_chunks = zip(
            *service.stream_labeled(path, 50, seed=4, chunk_size=20, original_space=True)
        )
        X = np.vstack(X_chunks)
        y = np.concatenate(y_chunks)
        assert X.shape == (50, len(dataset.schema))
        assert set(np.unique(y)) <= set(np.unique(dataset.y_train))
        sexes = set(X[:, dataset.schema.index_of("sex")])
        assert sexes <= {"Female", "Male"}

    def test_original_space_without_transformer_is_an_explicit_error(self, tmp_path):
        from repro.models import PrivBayes

        X = np.random.default_rng(0).random((80, 4))
        path = save_artifact(PrivBayes(epsilon=1.0, random_state=0).fit(X), tmp_path / "plain")
        service = SynthesisService()
        with pytest.raises(ArtifactError, match="original-space output is unavailable"):
            next(service.stream(path, 5, original_space=True))

    def test_transformer_is_cached_with_the_model(self, mixed_release):
        path, *_ = mixed_release
        service = SynthesisService()
        assert service.transformer(path) is service.transformer(path)
        service.evict(path)
        assert service.transformer(path) is not None  # reloaded after evict

    def test_unlabeled_stream_strips_the_label_block_of_mixin_models(self, tmp_path):
        # Regression: VAE-family sample() returns features + the one-hot
        # label block; original-space decoding must use the feature columns.
        from repro.models import VAE

        dataset = load_dataset("adult_mixed", n_samples=300, random_state=0)
        transformer = TableTransformer(dataset.schema).fit(dataset.X_train)
        model = VAE(
            latent_dim=3, hidden=(16,), epochs=1, batch_size=50, random_state=0
        ).fit(transformer.transform(dataset.X_train), dataset.y_train)
        path = save_artifact(model, tmp_path / "vae-mixed", transformer=transformer)
        service = SynthesisService()
        decoded = np.vstack(
            list(service.stream(path, 30, seed=1, chunk_size=16, original_space=True))
        )
        assert decoded.shape == (30, len(dataset.schema))
        sex = set(decoded[:, dataset.schema.index_of("sex")])
        assert sex <= {"Female", "Male"} and sex


class TestMixedTypeCli:
    def test_train_on_csv_then_sample_restores_labels(self, tmp_path, capsys):
        from repro.transforms import write_csv

        dataset = load_dataset("adult_mixed", n_samples=400, random_state=0)
        rows = np.empty((len(dataset.X_train), dataset.X_train.shape[1] + 1), dtype=object)
        rows[:, :-1] = dataset.X_train
        rows[:, -1] = dataset.y_train
        csv_path = tmp_path / "adult.csv"
        write_csv(csv_path, rows, names=list(dataset.schema.names) + ["income"])

        artifact = tmp_path / "artifact"
        assert main(
            [
                "train", "--model", "privbayes", "--data", str(csv_path),
                "--label", "income", "--epsilon", "1.0",
                "--output", str(artifact), "--seed", "0",
            ]
        ) == 0
        manifest = json.loads((artifact / "manifest.json").read_text())
        assert manifest["metadata"]["label"] == "income"
        assert manifest["transformer"] is not None

        out_csv = tmp_path / "synthetic.csv"
        assert main(
            [
                "sample", "--artifact", str(artifact), "-n", "40",
                "--seed", "7", "--labeled", "--output", str(out_csv),
            ]
        ) == 0
        capsys.readouterr()
        lines = out_csv.read_text().strip().splitlines()
        assert lines[0] == ",".join(list(dataset.schema.names) + ["label"])
        assert len(lines) == 41
        sex_column = dataset.schema.index_of("sex")
        values = {line.split(",")[sex_column] for line in lines[1:]}
        assert values <= {"Female", "Male"} and values

    def test_model_space_flag_emits_raw_floats(self, mixed_release, tmp_path, capsys):
        path, *_ = mixed_release
        out_csv = tmp_path / "raw.csv"
        assert main(
            [
                "sample", "--artifact", str(path), "-n", "10", "--seed", "1",
                "--model-space", "--output", str(out_csv),
            ]
        ) == 0
        capsys.readouterr()
        lines = out_csv.read_text().strip().splitlines()
        assert lines[0].startswith("column_0,")
        first = np.array(lines[1].split(","), dtype=float)
        assert first.min() >= 0.0 and first.max() <= 1.0

    def test_declared_schema_file_overrides_inference(self, tmp_path, capsys):
        from repro.transforms import write_csv

        dataset = load_dataset("adult_mixed", n_samples=400, random_state=0)
        rows = dataset.X_train
        csv_path = tmp_path / "features.csv"
        write_csv(csv_path, rows, names=list(dataset.schema.names))
        schema_path = dataset.schema.to_json(tmp_path / "schema.json")

        artifact = tmp_path / "declared"
        assert main(
            [
                "train", "--model", "privbayes", "--data", str(csv_path),
                "--schema", str(schema_path), "--epsilon", "1.0",
                "--output", str(artifact), "--seed", "0",
            ]
        ) == 0
        capsys.readouterr()
        restored = load_transformer(artifact)
        # Declared ordinal stays ordinal (inference would one-hot it).
        assert restored.schema["education"].kind == "ordinal"

    def test_evaluate_works_on_csv_trained_artifacts(self, tmp_path, capsys):
        # Regression: CSV-trained artifacts record 'data'/'label' metadata,
        # and evaluate must split the CSV and use the stored transformer.
        from repro.transforms import write_csv

        dataset = load_dataset("adult_mixed", n_samples=500, random_state=0)
        rows = np.empty((len(dataset.X_train), dataset.X_train.shape[1] + 1), dtype=object)
        rows[:, :-1] = dataset.X_train
        rows[:, -1] = dataset.y_train
        csv_path = tmp_path / "adult.csv"
        write_csv(csv_path, rows, names=list(dataset.schema.names) + ["income"])
        artifact = tmp_path / "artifact"
        assert main(
            [
                "train", "--model", "privbayes", "--data", str(csv_path),
                "--label", "income", "--epsilon", "3.0",
                "--output", str(artifact), "--seed", "0",
            ]
        ) == 0
        capsys.readouterr()
        assert main(["evaluate", "--artifact", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "Utility of privbayes on adult.csv" in out
        assert "auroc" in out

    def test_unknown_label_column_is_an_explicit_error(self, tmp_path, capsys):
        (tmp_path / "t.csv").write_text("a,b\n1,2\n3,4\n")
        code = main(
            [
                "train", "--model", "privbayes", "--data", str(tmp_path / "t.csv"),
                "--label", "income", "--output", str(tmp_path / "x"),
            ]
        )
        assert code == 2
        assert "label column 'income'" in capsys.readouterr().err
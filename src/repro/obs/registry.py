"""Process-wide metrics: labeled counters, gauges, and exact histograms.

The registry is the single source of truth for operational metrics across the
codebase — the HTTP tier, the synthesis service, the training engine, and the
experiment runner all register their instruments here and the ``/metrics``
endpoint (or ``python -m repro obs``) exposes one consistent snapshot.

Design points:

- **Thread-safe.**  Every instrument guards its samples with one lock; the
  registry guards family creation with another.  Concurrent increments from
  request-handler and training threads are exact, never lost.
- **Labeled.**  A family is declared once with its label *names*
  (``registry.counter("repro_http_requests_total", labels=("route",
  "status"))``) and each observation supplies the label *values*.  Declaring
  the same name twice returns the existing family (so modules can be
  imported in any order); re-declaring with a different kind or label set is
  a programming error and raises.
- **Exact-bucket histograms.**  Observations are counted into fixed upper
  edges with exact integer counts (no sketching); the JSON exposition keeps
  the per-bucket (non-cumulative) counts the PR-5 ``/metrics`` endpoint
  established, while the Prometheus exposition renders the standard
  cumulative ``le`` form.
- **Disable switch.**  ``REPRO_OBS_DISABLED=1`` makes :func:`get_registry`
  hand out a disabled registry whose instruments are no-ops, so the
  instrumentation can be priced (``benchmarks/bench_obs_overhead.py``) and
  turned off wholesale without touching call sites.

Everything here is stdlib-only.
"""

from __future__ import annotations

import json
import math
import os
import threading
from typing import Dict, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "merge_snapshots",
    "render_prometheus_snapshot",
    "set_registry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Shared default upper edges (seconds) for latency histograms — the PR-5
#: serving buckets, reused anywhere a more specific grid is not declared.
DEFAULT_LATENCY_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, float("inf"))


def _edge_label(edge: float) -> str:
    """The JSON key for a bucket edge ('+Inf' for the overflow bucket)."""
    return "+Inf" if math.isinf(edge) else repr(float(edge))


class _Instrument:
    """Shared label plumbing for one metric family."""

    kind = ""

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()):
        self.name = str(name)
        self.help = str(help)
        self.label_names: Tuple[str, ...] = tuple(labels)
        self._lock = threading.Lock()
        self._samples: Dict[tuple, object] = {}

    def _label_values(self, labels: dict) -> tuple:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {list(self.label_names)}; "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def samples(self) -> dict:
        """``{label_values_tuple: value}`` — a consistent copy."""
        with self._lock:
            return dict(self._samples)

    def _format_labels(self, values: tuple) -> str:
        if not self.label_names:
            return ""
        pairs = ",".join(
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(self.label_names, values)
        )
        return "{" + pairs + "}"


def _escape_label(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class Counter(_Instrument):
    """A monotonically increasing count (requests served, cache hits, ...)."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got inc({amount!r})")
        key = self._label_values(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0) + amount

    def value(self, **labels) -> float:
        key = self._label_values(labels)
        with self._lock:
            return self._samples.get(key, 0)

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(self._samples.values())


class Gauge(_Instrument):
    """A value that goes up and down (in-flight requests, epsilon spent)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._label_values(labels)
        with self._lock:
            self._samples[key] = float(value)

    def inc(self, amount: float = 1, **labels) -> None:
        key = self._label_values(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, default: float = 0.0, **labels) -> float:
        key = self._label_values(labels)
        with self._lock:
            return self._samples.get(key, default)


class _HistogramState:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * n_buckets
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Fixed-bucket distribution with exact per-bucket counts.

    ``buckets`` are upper edges; an implicit ``+Inf`` edge is appended when
    the caller's last edge is finite, so every observation lands somewhere.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help, labels)
        edges = tuple(float(edge) for edge in buckets)
        if not edges or list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError(f"bucket edges must be strictly increasing; got {buckets!r}")
        if not math.isinf(edges[-1]):
            edges = edges + (float("inf"),)
        self.buckets: Tuple[float, ...] = edges

    def observe(self, value: float, **labels) -> None:
        key = self._label_values(labels)
        value = float(value)
        with self._lock:
            state = self._samples.get(key)
            if state is None:
                state = self._samples[key] = _HistogramState(len(self.buckets))
            for index, edge in enumerate(self.buckets):
                if value <= edge:
                    state.bucket_counts[index] += 1
                    break
            state.sum += value
            state.count += 1

    def snapshot(self, **labels) -> dict:
        """Per-bucket counts, sum, and count for one label combination."""
        key = self._label_values(labels)
        with self._lock:
            state = self._samples.get(key)
            if state is None:
                counts = [0] * len(self.buckets)
                total, count = 0.0, 0
            else:
                counts = list(state.bucket_counts)
                total, count = state.sum, state.count
        return {
            "buckets": {
                _edge_label(edge): bucket
                for edge, bucket in zip(self.buckets, counts)
            },
            "sum": round(total, 6),
            "count": count,
        }


class _NullInstrument:
    """The disabled registry's no-op instrument: accepts anything, stores nothing."""

    def __init__(self, name: str, kind: str, buckets=DEFAULT_LATENCY_BUCKETS):
        self.name = name
        self.kind = kind
        self.label_names = ()
        edges = tuple(float(edge) for edge in buckets)
        if edges and not math.isinf(edges[-1]):
            edges = edges + (float("inf"),)
        self.buckets = edges or (float("inf"),)

    def inc(self, amount: float = 1, **labels) -> None:
        pass

    def dec(self, amount: float = 1, **labels) -> None:
        pass

    def set(self, value: float, **labels) -> None:
        pass

    def observe(self, value: float, **labels) -> None:
        pass

    def value(self, default: float = 0.0, **labels) -> float:
        return default if self.kind == "gauge" else 0

    def total(self) -> float:
        return 0

    def samples(self) -> dict:
        return {}

    def snapshot(self, **labels) -> dict:
        return {
            "buckets": {_edge_label(edge): 0 for edge in self.buckets},
            "sum": 0.0,
            "count": 0,
        }


class MetricsRegistry:
    """Get-or-create metric families by name; JSON and Prometheus exposition.

    Parameters
    ----------
    enabled:
        ``False`` makes every instrument a shared-shape no-op — the full
        off-switch behind ``REPRO_OBS_DISABLED=1``.  Consumers keep their
        call sites; snapshots come back with zeroed values.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._families: Dict[str, object] = {}

    # -- family creation -------------------------------------------------------------

    def _get_or_create(self, cls, name, help, labels, **kwargs):
        if not self.enabled:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = self._families[name] = _NullInstrument(
                        name, cls.kind, kwargs.get("buckets", DEFAULT_LATENCY_BUCKETS)
                    )
                return family
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = cls(name, help, labels, **kwargs)
                return family
        if family.kind != cls.kind or tuple(family.label_names) != tuple(labels):
            raise ValueError(
                f"metric {name!r} already registered as a {family.kind} with "
                f"labels {list(family.label_names)}; cannot re-register as a "
                f"{cls.kind} with labels {list(labels)}"
            )
        return family

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, tuple(labels))

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, tuple(labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, tuple(labels), buckets=buckets
        )

    def get(self, name: str):
        """The registered family for ``name``, or ``None``."""
        with self._lock:
            return self._families.get(name)

    def families(self) -> list:
        with self._lock:
            return sorted(self._families.values(), key=lambda family: family.name)

    def reset(self) -> None:
        """Drop every family (tests)."""
        with self._lock:
            self._families.clear()

    # -- exposition ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe dump: every family, every label combination."""
        out: dict = {}
        for family in self.families():
            if family.kind == "histogram":
                series = []
                for key in sorted(family.samples()):
                    labels = dict(zip(family.label_names, key))
                    series.append({"labels": labels, **family.snapshot(**labels)})
                out[family.name] = {"type": "histogram", "series": series}
            else:
                series = [
                    {"labels": dict(zip(family.label_names, key)), "value": value}
                    for key, value in sorted(family.samples().items())
                ]
                out[family.name] = {"type": family.kind, "series": series}
        return out

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            if family.kind == "histogram":
                for key in sorted(family.samples()):
                    labels = dict(zip(family.label_names, key))
                    snap = family.snapshot(**labels)
                    cumulative = 0
                    for edge, count in zip(self._edges(family), snap["buckets"].values()):
                        cumulative += count
                        le = "+Inf" if math.isinf(edge) else _format_value(edge)
                        bucket_labels = self._with_le(family, key, le)
                        lines.append(
                            f"{family.name}_bucket{bucket_labels} {cumulative}"
                        )
                    label_text = family._format_labels(key) if key else ""
                    lines.append(
                        f"{family.name}_sum{label_text} {_format_value(snap['sum'])}"
                    )
                    lines.append(f"{family.name}_count{label_text} {snap['count']}")
            else:
                samples = family.samples()
                if not samples and not family.label_names:
                    samples = {(): 0}
                for key in sorted(samples):
                    label_text = family._format_labels(key) if key else ""
                    lines.append(
                        f"{family.name}{label_text} {_format_value(samples[key])}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    @staticmethod
    def _edges(family) -> tuple:
        return family.buckets

    @staticmethod
    def _with_le(family, key: tuple, le: str) -> str:
        pairs = [
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(family.label_names, key)
        ]
        pairs.append(f'le="{le}"')
        return "{" + ",".join(pairs) + "}"

    def render_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)


def merge_snapshots(snapshots: Sequence[dict]) -> dict:
    """Merge registry :meth:`MetricsRegistry.snapshot` dumps across processes.

    The pre-fork serving tier gives every worker its own registry; a
    ``/metrics`` scrape lands on *one* worker, which collects its peers'
    snapshots over the control channel and merges them here so the exposition
    covers the whole pool.  Merge rules per family type:

    - **counter** — values for the same label combination are summed;
    - **gauge** — summed as well (in-flight requests, worker-slot occupancy,
      and cache sizes are all per-worker quantities whose pool-wide reading
      is the sum);
    - **histogram** — per-bucket counts, ``sum``, and ``count`` are summed
      (buckets are aligned by edge label; a family must use the same grid in
      every worker, which registration guarantees for identical code).

    A family name appearing with different types in two snapshots is a
    programming error and raises, mirroring the registry's own registration
    conflict check.
    """
    merged: dict = {}
    order: Dict[str, dict] = {}
    for snapshot in snapshots:
        for name, family in snapshot.items():
            target = merged.get(name)
            if target is None:
                target = merged[name] = {"type": family["type"]}
                order[name] = {}
            elif target["type"] != family["type"]:
                raise ValueError(
                    f"cannot merge metric {name!r}: seen as both "
                    f"{target['type']!r} and {family['type']!r}"
                )
            series_by_labels = order[name]
            for entry in family["series"]:
                labels = entry.get("labels") or {}
                key = tuple(sorted(labels.items()))
                existing = series_by_labels.get(key)
                if existing is None:
                    if family["type"] == "histogram":
                        series_by_labels[key] = {
                            "labels": dict(labels),
                            "buckets": dict(entry["buckets"]),
                            "sum": entry["sum"],
                            "count": entry["count"],
                        }
                    else:
                        series_by_labels[key] = {
                            "labels": dict(labels), "value": entry["value"]
                        }
                elif family["type"] == "histogram":
                    buckets = existing["buckets"]
                    for edge, count in entry["buckets"].items():
                        buckets[edge] = buckets.get(edge, 0) + count
                    existing["sum"] = round(existing["sum"] + entry["sum"], 6)
                    existing["count"] += entry["count"]
                else:
                    existing["value"] += entry["value"]
    for name, family in merged.items():
        family["series"] = [order[name][key] for key in sorted(order[name])]
    return merged


def render_prometheus_snapshot(snapshot: dict, registry: Optional["MetricsRegistry"] = None) -> str:
    """Prometheus text exposition rendered from a snapshot dict.

    The live :meth:`MetricsRegistry.render_prometheus` reads its own
    families; this renders the same format from a (possibly merged,
    cross-process) :meth:`snapshot` dump instead.  ``registry`` — typically
    the scraping worker's own — supplies ``# HELP`` text for families it
    also has locally; snapshots themselves carry no help strings.
    """
    lines = []
    for name in sorted(snapshot):
        family = snapshot[name]
        local = registry.get(name) if registry is not None else None
        if local is not None and local.help:
            lines.append(f"# HELP {name} {local.help}")
        lines.append(f"# TYPE {name} {family['type']}")
        for entry in family["series"]:
            labels = entry.get("labels") or {}
            pairs = [
                f'{key}="{_escape_label(value)}"'
                for key, value in labels.items()
            ]
            label_text = "{" + ",".join(pairs) + "}" if pairs else ""
            if family["type"] == "histogram":
                cumulative = 0
                for edge_label, count in entry["buckets"].items():
                    cumulative += count
                    le = (
                        "+Inf" if edge_label == "+Inf"
                        else _format_value(float(edge_label))
                    )
                    bucket_pairs = pairs + [f'le="{le}"']
                    lines.append(
                        f"{name}_bucket{{{','.join(bucket_pairs)}}} {cumulative}"
                    )
                lines.append(f"{name}_sum{label_text} {_format_value(entry['sum'])}")
                lines.append(f"{name}_count{label_text} {entry['count']}")
            else:
                lines.append(f"{name}{label_text} {_format_value(entry['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def _format_value(value) -> str:
    """Prometheus sample values: integers stay integral, floats use repr."""
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


# ----------------------------------------------------------------------------------
# The process-wide default registry
# ----------------------------------------------------------------------------------

_default_registry: Optional[MetricsRegistry] = None
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (disabled when ``REPRO_OBS_DISABLED`` is set)."""
    global _default_registry
    with _default_lock:
        if _default_registry is None:
            disabled = os.environ.get("REPRO_OBS_DISABLED", "") not in ("", "0")
            _default_registry = MetricsRegistry(enabled=not disabled)
        return _default_registry


def set_registry(registry: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """Replace the process-wide registry; returns the previous one.

    ``None`` resets to lazy re-creation (the ``REPRO_OBS_DISABLED`` check
    runs again on the next :func:`get_registry` call).  Benchmarks use this
    to price instrumentation; tests use it for isolation.
    """
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
        return previous

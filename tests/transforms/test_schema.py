"""Schema types: validation, container protocol, (de)serialisation, inference."""

import numpy as np
import pytest

from repro.transforms import COLUMN_KINDS, ColumnSchema, TableSchema


class TestColumnSchema:
    def test_kinds_are_validated(self):
        for kind in COLUMN_KINDS:
            categories = None if kind == "numeric" else ("a", "b")
            assert ColumnSchema("c", kind, categories).kind == kind
        with pytest.raises(ValueError, match="unknown kind"):
            ColumnSchema("c", "continuous")

    def test_numeric_rejects_categories(self):
        with pytest.raises(ValueError, match="must not declare categories"):
            ColumnSchema("age", "numeric", categories=("a", "b"))

    def test_binary_requires_exactly_two_categories(self):
        with pytest.raises(ValueError, match="exactly 2"):
            ColumnSchema("sex", "binary", categories=("a", "b", "c"))
        assert ColumnSchema("sex", "binary", categories=("F", "M")).categories == ("F", "M")

    def test_dict_round_trip(self):
        column = ColumnSchema("workclass", "categorical", ("Private", "Gov"))
        assert ColumnSchema.from_dict(column.to_dict()) == column
        numeric = ColumnSchema("age", "numeric")
        assert ColumnSchema.from_dict(numeric.to_dict()) == numeric
        assert "categories" not in numeric.to_dict()


class TestTableSchema:
    def _schema(self):
        return TableSchema(
            [
                ColumnSchema("age", "numeric"),
                ColumnSchema("workclass", "categorical", ("Private", "Gov")),
                ColumnSchema("sex", "binary", ("F", "M")),
            ]
        )

    def test_container_protocol(self):
        schema = self._schema()
        assert len(schema) == 3
        assert schema.names == ("age", "workclass", "sex")
        assert schema.kinds == ("numeric", "categorical", "binary")
        assert schema["workclass"].categories == ("Private", "Gov")
        assert schema[0].name == "age"
        assert [column.name for column in schema] == ["age", "workclass", "sex"]
        with pytest.raises(KeyError, match="no column named"):
            schema["income"]

    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ValueError, match="at least one column"):
            TableSchema([])
        with pytest.raises(ValueError, match="duplicate column names"):
            TableSchema([ColumnSchema("a", "numeric"), ColumnSchema("a", "numeric")])

    def test_is_numeric(self):
        assert TableSchema.numeric(4).is_numeric
        assert not self._schema().is_numeric

    def test_numeric_constructor(self):
        assert TableSchema.numeric(3).names == ("feature_0", "feature_1", "feature_2")
        assert TableSchema.numeric(["a", "b"]).names == ("a", "b")

    def test_drop(self):
        schema = self._schema().drop("workclass")
        assert schema.names == ("age", "sex")
        with pytest.raises(KeyError):
            self._schema().drop("income")

    def test_dict_and_json_round_trip(self, tmp_path):
        schema = self._schema()
        assert TableSchema.from_dict(schema.to_dict()) == schema
        path = schema.to_json(tmp_path / "schema.json")
        assert TableSchema.from_json(path) == schema


class TestInference:
    def test_numeric_vs_categorical_vs_binary(self):
        rows = np.array(
            [["1.5", "a", "x"], ["2", "b", "y"], ["3e1", "a", "z"]], dtype=object
        )
        schema = TableSchema.infer(rows, names=["num", "bin", "cat"])
        assert schema.kinds == ("numeric", "binary", "categorical")
        assert schema["bin"].categories == ("a", "b")
        assert schema["cat"].categories == ("x", "y", "z")

    def test_generated_names_and_name_mismatch(self):
        rows = np.array([["1", "a"], ["2", "b"]], dtype=object)
        assert TableSchema.infer(rows).names == ("column_0", "column_1")
        with pytest.raises(ValueError, match="column names"):
            TableSchema.infer(rows, names=["only_one"])

    def test_too_many_categories_is_an_explicit_error(self):
        rows = np.array([[f"cat_{i}"] for i in range(40)], dtype=object)
        with pytest.raises(ValueError, match="max_categories"):
            TableSchema.infer(rows, names=["c"], max_categories=10)

"""Experiment-runner throughput: serial vs. process-pool sweep execution.

Runs the same epsilon-sweep spec through :class:`repro.experiments.Runner`
twice — ``workers=1`` and ``workers=N`` — and records wall-clock, speedup,
and the fact that the two runs produce identical records (parallelism must
never perturb determinism).  Also measures warm-cache resume: a second run
over a primed content-addressed cache must execute zero trials.

Writes ``benchmarks/results/BENCH_experiment_runner.json`` and exits non-zero
if the pooled records differ from the serial ones or if the warm-cache rerun
recomputes anything.  The wall-clock bar (pooled < 0.5x serial, needs >= 4
cores) is enforced in full mode only — ``--smoke`` records the timing but
never gates on it, so shared CI runners can run it on every push without
noisy-neighbor flakes (the nightly tier-2 suite owns the timing assertion).

Usage::

    PYTHONPATH=src python benchmarks/bench_experiment_runner.py          # full
    PYTHONPATH=src python benchmarks/bench_experiment_runner.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments import ExperimentSpec, Runner

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_experiment_runner.json"


def sweep_spec(smoke: bool) -> ExperimentSpec:
    """A Figure-4-shaped epsilon sweep; smoke mode subsamples the trials."""
    params = {"n_samples": 4000, "scale": "small", "n_synthetic_cap": 4000}
    epsilons = [0.3, 1.0, 3.0, 10.0]
    if smoke:
        params.update({"n_samples": 2000, "subsample": 600, "n_synthetic_cap": 600})
        epsilons = [0.3, 1.0, 3.0]
    return ExperimentSpec.from_dict(
        {
            "name": "bench_epsilon_sweep",
            "kind": "utility",
            "models": ["P3GM", "DP-GM"],
            "datasets": ["credit"],
            "epsilons": epsilons,
            "params": params,
        }
    )


def timed_run(runner: Runner, spec: ExperimentSpec):
    start = time.perf_counter()
    report = runner.run(spec)
    return report, time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small CI configuration")
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args(argv)

    spec = sweep_spec(args.smoke)
    cores = os.cpu_count() or 1
    print(f"epsilon sweep: {len(spec.trials())} trials, {cores} cores")

    with tempfile.TemporaryDirectory() as tmp:
        # The serial timed run doubles as the cache-priming pass (cache writes
        # are negligible next to training); the pooled run must stay uncached
        # so it actually executes every trial.
        serial, serial_s = timed_run(Runner(workers=1, cache_dir=tmp), spec)
        print(f"serial:           {serial_s:.2f}s")
        pooled, pooled_s = timed_run(Runner(workers=args.workers), spec)
        speedup = serial_s / pooled_s if pooled_s else float("inf")
        print(f"{args.workers}-worker pool:    {pooled_s:.2f}s  ({speedup:.2f}x)")
        resumed, resumed_s = timed_run(Runner(workers=1, cache_dir=tmp), spec)
        print(f"warm-cache rerun: {resumed_s:.2f}s  ({resumed.cached} cached)")

    results = {
        "mode": "smoke" if args.smoke else "full",
        "cores": cores,
        "workers": args.workers,
        "trials": serial.total,
        "serial_s": round(serial_s, 3),
        "pooled_s": round(pooled_s, 3),
        "speedup": round(speedup, 3),
        "warm_cache_s": round(resumed_s, 3),
        "records_identical": serial.records == pooled.records,
        "warm_cache_recomputed": resumed.executed,
    }
    if args.smoke:
        # Never clobber the committed full-run record with smoke numbers.
        print(json.dumps(results, indent=2))
    else:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"results -> {RESULTS_PATH}")

    failures = []
    if not results["records_identical"]:
        failures.append("pooled records differ from serial records")
    if resumed.executed:
        failures.append(f"warm-cache rerun recomputed {resumed.executed} trials")
    if args.smoke or cores < 4:
        print(f"note: wall-clock bar not enforced (smoke={args.smoke}, {cores} core(s))")
    elif pooled_s >= 0.5 * serial_s:
        failures.append(
            f"pooled run {pooled_s:.2f}s not < 0.5x serial {serial_s:.2f}s"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Opt-in phase profiling: wall/CPU time and peak memory per named phase.

Where metrics answer "how many / how fast on average" and traces answer
"where did this request's time go", the profiler answers "what did this
*phase* of work cost the process": wall seconds, CPU seconds (all threads),
peak RSS (``resource.getrusage``), and — optionally, because it costs real
overhead — the peak *traced* allocation via :mod:`tracemalloc`.

Profiling is off unless explicitly requested: wrap a phase yourself, or set
``REPRO_PROFILE=1`` and use :func:`maybe_profile`, which becomes a
zero-overhead no-op otherwise.  Results land on the metrics registry as
gauges (``repro_profile_wall_seconds{phase=...}`` etc.) and are returned as
:class:`PhaseProfile` records for direct reporting.
"""

from __future__ import annotations

import os
import sys
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import List, Optional

from repro.obs.registry import MetricsRegistry, get_registry

try:  # pragma: no cover - resource is POSIX-only (absent on Windows)
    import resource
except ImportError:  # pragma: no cover
    resource = None

__all__ = ["PhaseProfile", "Profiler", "profile_phase", "maybe_profile", "profiling_enabled"]


def profiling_enabled() -> bool:
    """True when ``REPRO_PROFILE`` requests per-phase profiling."""
    return os.environ.get("REPRO_PROFILE", "") not in ("", "0")


def _peak_rss_mb() -> Optional[float]:
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes, macOS bytes; normalise to MB.
    scale = 1e6 if sys.platform == "darwin" else 1e3
    return round(peak / scale, 3)


@dataclass
class PhaseProfile:
    """What one profiled phase cost."""

    phase: str
    wall_s: float
    cpu_s: float
    peak_rss_mb: Optional[float] = None
    traced_peak_mb: Optional[float] = None

    def as_dict(self) -> dict:
        return {key: value for key, value in self.__dict__.items() if value is not None}


@dataclass
class Profiler:
    """Collects :class:`PhaseProfile` records and mirrors them onto gauges.

    One profiler instance is cheap; phases may nest (each phase measures its
    own window independently).
    """

    registry: Optional[MetricsRegistry] = None
    phases: List[PhaseProfile] = field(default_factory=list)

    @contextmanager
    def phase(self, name: str, trace_allocations: bool = False):
        """Measure the block as phase ``name``; yields the (filled-in-on-exit)
        :class:`PhaseProfile`.  ``trace_allocations`` adds a tracemalloc peak
        (noticeably slower; keep it for memory investigations)."""
        registry = self.registry if self.registry is not None else get_registry()
        started_tracing = False
        if trace_allocations and not tracemalloc.is_tracing():
            tracemalloc.start()
            started_tracing = True
        if trace_allocations:
            tracemalloc.reset_peak()
        profile = PhaseProfile(phase=str(name), wall_s=0.0, cpu_s=0.0)
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield profile
        finally:
            profile.wall_s = round(time.perf_counter() - wall0, 6)
            profile.cpu_s = round(time.process_time() - cpu0, 6)
            profile.peak_rss_mb = _peak_rss_mb()
            if trace_allocations:
                _, peak = tracemalloc.get_traced_memory()
                profile.traced_peak_mb = round(peak / 1e6, 3)
                if started_tracing:
                    tracemalloc.stop()
            self.phases.append(profile)
            labels = {"phase": profile.phase}
            registry.gauge(
                "repro_profile_wall_seconds", "Wall time of the last run of each profiled phase",
                labels=("phase",),
            ).set(profile.wall_s, **labels)
            registry.gauge(
                "repro_profile_cpu_seconds", "CPU time of the last run of each profiled phase",
                labels=("phase",),
            ).set(profile.cpu_s, **labels)
            if profile.peak_rss_mb is not None:
                registry.gauge(
                    "repro_profile_peak_rss_mb", "Peak RSS observed after each profiled phase",
                    labels=("phase",),
                ).set(profile.peak_rss_mb, **labels)
            if profile.traced_peak_mb is not None:
                registry.gauge(
                    "repro_profile_traced_peak_mb",
                    "tracemalloc peak during each profiled phase",
                    labels=("phase",),
                ).set(profile.traced_peak_mb, **labels)

    def report(self) -> list:
        """Every recorded phase, in execution order, as JSON-safe dicts."""
        return [profile.as_dict() for profile in self.phases]


@contextmanager
def profile_phase(name: str, registry: Optional[MetricsRegistry] = None,
                  trace_allocations: bool = False):
    """One-shot form: ``with profile_phase("train.fit") as p: ...``."""
    profiler = Profiler(registry=registry)
    with profiler.phase(name, trace_allocations=trace_allocations) as profile:
        yield profile


@contextmanager
def maybe_profile(name: str, registry: Optional[MetricsRegistry] = None):
    """Profile the block only when ``REPRO_PROFILE`` is set; no-op otherwise."""
    if profiling_enabled():
        with profile_phase(name, registry=registry) as profile:
            yield profile
    else:
        yield None

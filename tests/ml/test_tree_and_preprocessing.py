"""Tests for the decision tree, scalers, and train/test splitting."""

import numpy as np
import pytest

from repro.ml import DecisionTreeRegressor, MinMaxScaler, StandardScaler, train_test_split


class TestDecisionTree:
    def test_fits_piecewise_constant_function(self, rng):
        X = rng.uniform(size=(400, 1))
        y = np.where(X[:, 0] > 0.5, 2.0, -1.0)
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        predictions = tree.predict(X)
        assert np.abs(predictions - y).max() < 1e-9

    def test_depth_one_is_a_stump(self, rng):
        X = rng.uniform(size=(200, 3))
        y = X[:, 1]
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert tree.n_leaves_ <= 2

    def test_respects_min_samples_leaf(self, rng):
        X = rng.uniform(size=(100, 2))
        y = rng.normal(size=100)
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=40).fit(X, y)
        leaf_ids = tree.apply(X)
        _, counts = np.unique(leaf_ids, return_counts=True)
        assert counts.min() >= 40

    def test_sample_weight_changes_fit(self, rng):
        X = np.vstack([np.zeros((50, 1)), np.ones((50, 1))])
        y = np.concatenate([np.zeros(50), np.ones(50)])
        weights = np.concatenate([np.full(50, 1e-6), np.full(50, 1.0)])
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y, sample_weight=weights)
        # With almost all weight on the y=1 group, the root prediction is ~1.
        assert tree.root_.value > 0.9

    def test_apply_and_set_leaf_values(self, rng):
        X = rng.uniform(size=(100, 2))
        y = rng.normal(size=100)
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        leaves = np.unique(tree.apply(X))
        tree.set_leaf_values({int(leaf): 7.0 for leaf in leaves})
        np.testing.assert_allclose(tree.predict(X), 7.0)

    def test_constant_target_single_leaf(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        tree = DecisionTreeRegressor(max_depth=5).fit(X, np.ones(20))
        assert tree.n_leaves_ == 1

    def test_max_features_sqrt(self, rng):
        X = rng.uniform(size=(200, 16))
        y = X[:, 0] * 2
        tree = DecisionTreeRegressor(max_depth=3, max_features="sqrt", random_state=0).fit(X, y)
        assert tree.predict(X).shape == (200,)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.ones((2, 2)))
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.ones((3, 2)), np.ones(3), sample_weight=-np.ones(3))


class TestScalers:
    def test_minmax_range(self, rng):
        X = rng.normal(loc=5, scale=3, size=(100, 4))
        scaled = MinMaxScaler().fit_transform(X)
        assert scaled.min() >= 0.0 and scaled.max() <= 1.0
        np.testing.assert_allclose(scaled.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(scaled.max(axis=0), 1.0, atol=1e-12)

    def test_minmax_roundtrip(self, rng):
        X = rng.normal(size=(50, 3))
        scaler = MinMaxScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-10)

    def test_minmax_constant_column(self):
        X = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        scaled = MinMaxScaler().fit_transform(X)
        assert np.all(np.isfinite(scaled))

    def test_minmax_clips_out_of_range_data(self, rng):
        X = rng.uniform(size=(50, 2))
        scaler = MinMaxScaler().fit(X)
        out = scaler.transform(np.array([[10.0, -10.0]]))
        np.testing.assert_allclose(out, [[1.0, 0.0]])

    def test_standard_scaler(self, rng):
        X = rng.normal(loc=3, scale=2, size=(200, 3))
        scaled = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-10)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.ones((2, 2)))
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_unfitted_inverse_transform_raises_the_same_error(self):
        # Both scalers share one _check_fitted guard on transform AND
        # inverse_transform, with a consistent message.
        with pytest.raises(RuntimeError, match="not fitted"):
            MinMaxScaler().inverse_transform(np.ones((2, 2)))
        with pytest.raises(RuntimeError, match="not fitted"):
            StandardScaler().inverse_transform(np.ones((2, 2)))

    def test_standard_scaler_roundtrip(self, rng):
        X = rng.normal(loc=-2, scale=5, size=(60, 3))
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-10)

    def test_scalers_are_the_shared_transform_implementations(self):
        # The dedup satellite: one arithmetic implementation in repro.transforms
        # serves the sklearn-style names.
        from repro.transforms import MinMaxNumeric, StandardNumeric

        assert issubclass(MinMaxScaler, MinMaxNumeric)
        assert issubclass(StandardScaler, StandardNumeric)
        assert MinMaxScaler.transform is MinMaxNumeric.transform
        assert StandardScaler.inverse_transform is StandardNumeric.inverse_transform


class TestTrainTestSplit:
    def test_sizes(self, rng):
        X = rng.normal(size=(200, 3))
        y = rng.integers(0, 2, 200)
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.25, random_state=0)
        assert len(X_train) + len(X_test) == 200
        assert len(X_test) == pytest.approx(50, abs=2)

    def test_stratification_preserves_rare_class(self, rng):
        y = np.zeros(1000, dtype=int)
        y[:10] = 1  # 1% positives
        X = rng.normal(size=(1000, 2))
        _, X_test, _, y_test = train_test_split(X, y, test_size=0.1, stratify=True, random_state=0)
        assert y_test.sum() >= 1

    def test_no_overlap(self, rng):
        X = np.arange(100, dtype=float).reshape(-1, 1)
        y = (np.arange(100) % 2).astype(int)
        X_train, X_test, _, _ = train_test_split(X, y, test_size=0.2, random_state=1)
        assert set(X_train[:, 0]).isdisjoint(set(X_test[:, 0]))

    def test_invalid_test_size(self, rng):
        with pytest.raises(ValueError):
            train_test_split(np.ones((10, 2)), np.ones(10), test_size=1.5)

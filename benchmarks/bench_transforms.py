"""Mixed-type table transformation throughput: transform + inverse at scale.

Measures rows/sec for the full :class:`repro.transforms.TableTransformer`
round-trip on an adult-like mixed table (3 numeric, 3 one-hot categorical,
1 ordinal, 1 binary column — 8 raw columns, 20 model-space columns):

- **fit**       — schema-driven per-column fitting on the training slice,
- **transform** — raw object table -> dense ``[0, 1]`` float matrix,
- **inverse**   — model-space matrix -> original-space rows with real labels.

The subsystem's contract is that all three are vectorised per-column numpy
operations with no Python-level per-row loops, so throughput must scale to
millions of rows.  Writes ``benchmarks/results/BENCH_transforms.json`` and
exits non-zero if the round-trip stops being correct (bit-exact categories,
allclose numerics) or throughput collapses below the floor a per-row loop
would produce (``--min-rows-per-sec``, conservative for shared CI runners).

Usage::

    PYTHONPATH=src python benchmarks/bench_transforms.py          # full (1M rows)
    PYTHONPATH=src python benchmarks/bench_transforms.py --smoke  # CI (100k rows)
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.transforms import ColumnSchema, TableSchema, TableTransformer

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_transforms.json"

WORKCLASS = ("Private", "Self-employed", "Government", "Unemployed")
EDUCATION = ("HS-grad", "Some-college", "Bachelors", "Masters", "Doctorate")
OCCUPATION = ("Tech", "Sales", "Service", "Admin", "Manual", "Other")
SEX = ("Female", "Male")


def build_schema() -> TableSchema:
    return TableSchema(
        [
            ColumnSchema("age", "numeric"),
            ColumnSchema("workclass", "categorical", WORKCLASS),
            ColumnSchema("education", "ordinal", EDUCATION),
            ColumnSchema("occupation", "categorical", OCCUPATION),
            ColumnSchema("sex", "binary", SEX),
            ColumnSchema("capital_gain", "numeric"),
            ColumnSchema("hours_per_week", "numeric"),
            ColumnSchema("segment", "categorical", tuple(f"seg_{i}" for i in range(8))),
        ]
    )


def build_table(n_rows: int, seed: int = 0) -> np.ndarray:
    """An adult-like mixed table, generated column-wise (vectorised)."""
    rng = np.random.default_rng(seed)
    rows = np.empty((n_rows, 8), dtype=object)
    rows[:, 0] = rng.integers(17, 90, n_rows).astype(float)
    rows[:, 1] = np.asarray(WORKCLASS, dtype=object)[rng.integers(0, 4, n_rows)]
    rows[:, 2] = np.asarray(EDUCATION, dtype=object)[rng.integers(0, 5, n_rows)]
    rows[:, 3] = np.asarray(OCCUPATION, dtype=object)[rng.integers(0, 6, n_rows)]
    rows[:, 4] = np.asarray(SEX, dtype=object)[rng.integers(0, 2, n_rows)]
    rows[:, 5] = rng.exponential(600, n_rows)
    rows[:, 6] = np.clip(rng.normal(40, 12, n_rows), 1, 99)
    rows[:, 7] = np.asarray([f"seg_{i}" for i in range(8)], dtype=object)[
        rng.integers(0, 8, n_rows)
    ]
    return rows


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def verify_round_trip(schema: TableSchema, rows: np.ndarray, decoded: np.ndarray) -> list:
    """Exact categories, allclose numerics; returns a list of failures."""
    failures = []
    for index, column in enumerate(schema):
        if column.kind == "numeric":
            if not np.allclose(
                decoded[:, index].astype(float), rows[:, index].astype(float)
            ):
                failures.append(f"numeric column {column.name!r} did not round-trip")
        elif not (decoded[:, index] == rows[:, index].astype(str)).all():
            failures.append(f"category column {column.name!r} did not round-trip exactly")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small sizes for CI")
    parser.add_argument("--rows", type=int, default=None,
                        help="table size (default 1_000_000, or 100_000 with --smoke)")
    parser.add_argument("--min-rows-per-sec", type=float, default=50_000.0,
                        help="fail below this transform/inverse throughput "
                             "(a per-row python loop manages ~10k rows/sec)")
    parser.add_argument("--output", type=Path, default=RESULTS_PATH)
    args = parser.parse_args(argv)

    n_rows = args.rows if args.rows is not None else (100_000 if args.smoke else 1_000_000)
    schema = build_schema()
    rows = build_table(n_rows)

    transformer = TableTransformer(schema)
    _, fit_s = timed(lambda: transformer.fit(rows))
    encoded, transform_s = timed(lambda: transformer.transform(rows))
    decoded, inverse_s = timed(lambda: transformer.inverse_transform(encoded))

    results = {
        "fit": {"seconds": round(fit_s, 4), "rows_per_sec": round(n_rows / fit_s, 1)},
        "transform": {
            "seconds": round(transform_s, 4),
            "rows_per_sec": round(n_rows / transform_s, 1),
        },
        "inverse_transform": {
            "seconds": round(inverse_s, 4),
            "rows_per_sec": round(n_rows / inverse_s, 1),
        },
    }
    report = {
        "benchmark": "transforms_throughput",
        "config": {
            "n_rows": n_rows,
            "raw_columns": len(schema),
            "model_space_columns": transformer.output_width,
            "smoke": args.smoke,
            "min_rows_per_sec": args.min_rows_per_sec,
        },
        "results": results,
    }
    if args.smoke:
        # Never clobber the committed full-run record with smoke numbers.
        print(json.dumps(report, indent=2))
    else:
        args.output.parent.mkdir(exist_ok=True)
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(json.dumps(report, indent=2))

    failures = verify_round_trip(schema, rows, decoded)
    for stage in ("transform", "inverse_transform"):
        if results[stage]["rows_per_sec"] < args.min_rows_per_sec:
            failures.append(
                f"{stage} ran at {results[stage]['rows_per_sec']} rows/sec "
                f"< {args.min_rows_per_sec} — per-column vectorisation regressed"
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"OK: {n_rows} rows round-trip exactly; transform "
        f"{results['transform']['rows_per_sec']:.0f} rows/sec, inverse "
        f"{results['inverse_transform']['rows_per_sec']:.0f} rows/sec"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

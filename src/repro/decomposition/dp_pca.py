"""Differentially private PCA via the Wishart mechanism (Jiang et al., AAAI'16).

The mechanism releases a noisy covariance matrix ``A + W`` where ``W`` follows
a Wishart distribution whose scale depends on the privacy budget, then runs
ordinary eigendecomposition on the noisy matrix.  Because each record is
assumed to have L2 norm at most 1 (we clip rows to enforce it), computing the
noisy covariance satisfies ``(epsilon, 0)``-DP, and by post-processing so does
the resulting projection.

This is the dimensionality reduction ``f`` of P3GM's Encoding Phase
(Algorithm 1, line 1).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.decomposition.pca import PCA
from repro.privacy.mechanisms import wishart_noise
from repro.utils.rng import as_generator
from repro.utils.validation import check_array, check_positive

__all__ = ["DPPCA"]


class DPPCA(PCA):
    """Wishart-mechanism differentially private PCA.

    Parameters
    ----------
    n_components:
        Output dimensionality ``d'``.
    epsilon:
        Pure-DP budget of the covariance release (``epsilon_p`` in the paper;
        the experiments use 0.1).
    clip_norm:
        Rows are scaled to have L2 norm at most this value before computing the
        covariance so the mechanism's sensitivity analysis holds.  The default
        of 1.0 matches the mechanism's assumption.
    mean:
        Optional publicly known per-feature mean used for centering (the paper
        assumes the mean is public; see Section II-D).
    """

    def __init__(
        self,
        n_components: int,
        epsilon: float = 0.1,
        clip_norm: float = 1.0,
        mean: Optional[np.ndarray] = None,
        random_state=None,
    ):
        super().__init__(n_components, mean=mean)
        check_positive(epsilon, "epsilon")
        check_positive(clip_norm, "clip_norm")
        self.epsilon = epsilon
        self.clip_norm = clip_norm
        self._rng = as_generator(random_state)

    def fit(self, X) -> "DPPCA":
        from repro.privacy.clipping import clip_rows

        X = check_array(X, "X")
        n_samples, n_features = X.shape
        if self.n_components > n_features:
            raise ValueError(
                f"n_components={self.n_components} exceeds data dimensionality {n_features}"
            )
        self.mean_ = self._given_mean if self._given_mean is not None else X.mean(axis=0)
        centered = clip_rows(X - self.mean_, self.clip_norm)
        covariance = centered.T @ centered / n_samples
        noisy_covariance = covariance + wishart_noise(
            n_features, self.epsilon, n_samples, rng=self._rng
        )
        self._finalise(noisy_covariance)
        return self

    def transform(self, X) -> np.ndarray:
        """Project (clipped, centered) data onto the noisy principal subspace."""
        from repro.privacy.clipping import clip_rows

        self._check_fitted()
        X = check_array(X, "X")
        return clip_rows(X - self.mean_, self.clip_norm) @ self.components_.T

    def privacy_spent(self) -> float:
        """The pure-DP budget consumed by fitting (0 if never fitted)."""
        return self.epsilon if self.components_ is not None else 0.0

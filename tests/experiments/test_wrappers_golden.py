"""Golden-value regression: the spec-based wrappers equal the legacy loops.

``golden_values.json`` holds the exact outputs of the original hand-rolled
``run_table*/run_fig*`` functions (captured at fixed seeds on miniature
configurations *before* they were re-expressed on the experiment runner).
Every wrapper must keep reproducing those numbers bit-for-bit — the refactor
is a pure re-plumbing, not a behaviour change.  ``table7`` additionally runs
under a 2-worker pool, proving pool execution equals the legacy serial loop.
"""

import json
from pathlib import Path

import pytest

from repro.evaluation import experiments as experiments_module

GOLDEN = json.loads((Path(__file__).parent / "golden_values.json").read_text())

WRAPPERS = {
    "table5": experiments_module.run_table5_nonprivate_comparison,
    "table6": experiments_module.run_table6_private_tabular,
    "table7": experiments_module.run_table7_image_classification,
    "fig2": experiments_module.run_fig2_sample_quality,
    "fig4": experiments_module.run_fig4_epsilon_sweep,
    "fig5": experiments_module.run_fig5_dimension_sweep,
    "fig6": experiments_module.run_fig6_composition,
    "fig7": experiments_module.run_fig7_learning_efficiency,
}


def _normalize(value):
    """Round-trip through JSON so numpy scalars compare equal to the file."""
    return json.loads(json.dumps(value, default=float))


@pytest.mark.parametrize(
    "name",
    [
        # table7 (4 image models incl. PrivBayes on 784 pixels) is by far the
        # heaviest golden case; it runs in the nightly tier-2 job to keep
        # tier-1 at the pre-refactor suite runtime.
        pytest.param(name, marks=pytest.mark.tier2) if name == "table7" else name
        for name in sorted(GOLDEN)
    ],
)
def test_wrapper_reproduces_pre_refactor_metrics(name):
    entry = GOLDEN[name]
    kwargs = dict(entry["kwargs"])
    if name == "table6":
        kwargs["n_samples"] = {k: int(v) for k, v in kwargs["n_samples"].items()}
    if name == "table7":
        # The heaviest golden case doubles as the pool-equivalence check.
        kwargs["workers"] = 2
    produced = WRAPPERS[name](**kwargs)
    expected = entry["curves"] if name == "fig7" else entry["rows"]
    assert _normalize(produced) == expected

"""Statistical regression tests: parallelism must not perturb determinism.

Two guarantees are pinned here:

1. the same spec run serially and under a 2-worker process pool produces
   *byte-identical* JSONL stores (deterministic per-trial seeding, canonical
   record order);
2. concurrent trials never share an RNG stream — each trial derives all its
   randomness from its own ``TrialSpec.seed``, never from module-level numpy
   state (the classic leak under fork-based process pools).
"""

import numpy as np

from repro.experiments import ExperimentSpec, ResultStore, Runner


def mixed_spec(seeds=(0,)):
    """Analytic + real-training trials, small enough for tier 1."""
    params = {"n_samples": 1500, "subsample": 250, "scale": "small", "n_synthetic_cap": 250}
    return (
        ExperimentSpec.from_dict(
            {
                "name": "determinism",
                "kind": "utility",
                "models": ["VAE"],
                "datasets": ["credit"],
                "epsilons": [1.0],
                "seeds": list(seeds),
                "params": params,
            }
        ),
        ExperimentSpec.from_dict(
            {
                "name": "determinism",
                "kind": "composition",
                "seeds": list(seeds),
                "grid": {"sigma": [1.0, 3.0]},
                "params": {"delta": 1e-5},
            }
        ),
    )


def test_serial_and_pooled_runs_write_bit_identical_jsonl(tmp_path):
    specs = mixed_spec(seeds=(0, 1))
    serial = ResultStore(tmp_path / "serial.jsonl")
    pooled = ResultStore(tmp_path / "pooled.jsonl")
    Runner(workers=1).run(specs, store=serial)
    Runner(workers=2).run(specs, store=pooled)
    assert serial.path.read_bytes() == pooled.path.read_bytes()


def test_concurrent_trials_with_different_seeds_never_share_a_stream(tmp_path):
    # Both seeds of the same cell run concurrently in one 2-worker pool; each
    # must match its own serial single-seed run and differ from the other.
    pooled = Runner(workers=2).run(mixed_spec(seeds=(0, 1)))
    alone = {
        seed: Runner(workers=1).run(mixed_spec(seeds=(seed,))) for seed in (0, 1)
    }
    by_seed = {}
    for record in pooled.records:
        if record["kind"] == "utility":
            by_seed[record["seed"]] = record["result"]
    for seed in (0, 1):
        serial_result = [
            r["result"] for r in alone[seed].records if r["kind"] == "utility"
        ][0]
        assert by_seed[seed] == serial_result
    assert by_seed[0] != by_seed[1], "two seeds produced identical trials: shared stream"


def test_trials_are_immune_to_module_level_rng_state():
    # Trial results must be a pure function of the spec: perturbing numpy's
    # legacy global RNG (the state a fork-based pool would duplicate into
    # every worker) must not change any record.
    specs = mixed_spec(seeds=(0,))
    np.random.seed(1)
    first = Runner(workers=1).run(specs)
    np.random.seed(999)
    np.random.random(size=1000)
    second = Runner(workers=1).run(specs)
    assert first.records == second.records

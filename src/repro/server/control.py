"""The worker pool's local control channel (metrics aggregation).

Every pre-fork worker owns a private :class:`~repro.obs.MetricsRegistry`, so
a ``/metrics`` scrape — which the kernel hands to *one* worker — would
otherwise only see a fraction of the pool's traffic.  Each worker therefore
exposes its metrics state over a unix-domain socket in a shared control
directory (``worker-<index>.sock``); the worker handling a scrape connects to
every peer socket, collects their payloads, and merges.

The protocol is deliberately trivial: connecting *is* the request.  The
server side sends one JSON document (the worker's metrics payload + registry
snapshot) and closes; the client reads to EOF.  Unreachable sockets are
skipped — a worker that just died (and is being respawned by the supervisor)
must degrade a scrape to partial data, never fail it.

Everything here is stdlib-only and Unix-only, like the pool itself.
"""

from __future__ import annotations

import json
import os
import socket
import threading
from pathlib import Path
from typing import Callable, List, Optional

__all__ = ["ControlServer", "PoolPeers", "CONTROL_SOCKET_SUFFIX"]

CONTROL_SOCKET_SUFFIX = ".sock"

#: Per-peer connect/read budget.  A scrape over N workers costs at most
#: N * this many seconds in the worst case; in practice peers answer in
#: microseconds because the payload is built from in-memory counters.
PEER_TIMEOUT = 2.0


class ControlServer:
    """Serve one worker's metrics payload over a unix socket, one thread.

    Parameters
    ----------
    path:
        The socket path (inside the pool's control directory).
    payload:
        Zero-argument callable returning the JSON-safe dict to serve.  It is
        evaluated per connection, so scrapes always see current counters.
    """

    def __init__(self, path, payload: Callable[[], dict]):
        self.path = Path(path)
        self._payload = payload
        self._socket: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()

    def start(self) -> "ControlServer":
        if self.path.exists():
            self.path.unlink()
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        server.bind(str(self.path))
        server.listen(8)
        self._socket = server
        self._thread = threading.Thread(
            target=self._serve, name=f"control:{self.path.name}", daemon=True
        )
        self._thread.start()
        return self

    def _serve(self) -> None:
        while not self._stopping.is_set():
            try:
                connection, _ = self._socket.accept()
            except OSError:
                return  # socket closed by stop()
            try:
                body = json.dumps(self._payload()).encode("utf-8")
                connection.sendall(body)
            except Exception:
                pass  # a failed scrape never takes the worker down
            finally:
                try:
                    connection.close()
                except OSError:
                    pass

    def stop(self) -> None:
        self._stopping.set()
        if self._socket is not None:
            try:
                self._socket.close()
            except OSError:
                pass
        try:
            self.path.unlink()
        except OSError:
            pass


class PoolPeers:
    """Collect peer workers' metrics payloads from the control directory."""

    def __init__(self, control_dir, exclude=None, timeout: float = PEER_TIMEOUT):
        self.control_dir = Path(control_dir)
        self.exclude = None if exclude is None else Path(exclude)
        self.timeout = float(timeout)

    def collect(self) -> List[dict]:
        """One payload per reachable peer; dead peers are silently skipped."""
        payloads = []
        try:
            entries = sorted(self.control_dir.glob(f"*{CONTROL_SOCKET_SUFFIX}"))
        except OSError:
            return payloads
        for path in entries:
            if self.exclude is not None and path == self.exclude:
                continue
            payload = self._fetch(path)
            if payload is not None:
                payloads.append(payload)
        return payloads

    def _fetch(self, path: Path) -> Optional[dict]:
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as connection:
                connection.settimeout(self.timeout)
                connection.connect(str(path))
                pieces = []
                while True:
                    piece = connection.recv(1 << 16)
                    if not piece:
                        break
                    pieces.append(piece)
            return json.loads(b"".join(pieces))
        except (OSError, ValueError):
            # Connection refused / stale socket of a dead worker, a torn
            # write, or an unparseable body: partial aggregation wins over a
            # failed scrape.
            return None


def remove_stale_sockets(control_dir) -> None:
    """Drop leftover socket files (a recycled control dir after a crash)."""
    for path in Path(control_dir).glob(f"*{CONTROL_SOCKET_SUFFIX}"):
        try:
            os.unlink(path)
        except OSError:
            pass

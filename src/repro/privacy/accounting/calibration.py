"""Noise calibration for standalone DP-SGD training.

DP-VAE (the naive baseline) trains end to end with DP-SGD only, so its noise
multiplier is calibrated directly against a target ``(epsilon, delta)`` using
the subsampled-Gaussian RDP accountant.
"""

from __future__ import annotations

from repro.privacy.accounting.rdp import DEFAULT_ALPHAS, RDPAccountant
from repro.utils.validation import check_positive, check_probability

__all__ = ["dp_sgd_epsilon", "calibrate_dp_sgd_sigma"]


def dp_sgd_epsilon(sigma: float, sample_rate: float, steps: int, delta: float) -> float:
    """Epsilon spent by ``steps`` DP-SGD iterations with noise multiplier ``sigma``."""
    check_positive(sigma, "sigma")
    check_probability(sample_rate, "sample_rate")
    if steps < 0:
        raise ValueError("steps must be non-negative")
    if steps == 0 or sample_rate == 0:
        return 0.0
    accountant = RDPAccountant(DEFAULT_ALPHAS)
    accountant.compose_subsampled_gaussian(sample_rate, sigma, steps)
    eps, _ = accountant.get_epsilon(delta)
    return eps


def calibrate_dp_sgd_sigma(
    target_epsilon: float,
    sample_rate: float,
    steps: int,
    delta: float,
    low: float = 0.3,
    high: float = 200.0,
    tol: float = 1e-3,
) -> float:
    """Binary-search the smallest noise multiplier meeting ``target_epsilon``."""
    check_positive(target_epsilon, "target_epsilon")
    if dp_sgd_epsilon(high, sample_rate, steps, delta) > target_epsilon:
        raise ValueError(
            f"target epsilon {target_epsilon} unreachable even with sigma={high}"
        )
    if dp_sgd_epsilon(low, sample_rate, steps, delta) <= target_epsilon:
        return low
    lo, hi = low, high
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if dp_sgd_epsilon(mid, sample_rate, steps, delta) <= target_epsilon:
            hi = mid
        else:
            lo = mid
    return hi

"""The training loop shared by every generative model.

``Trainer`` owns what the models' four hand-rolled ``_train_loop`` /
``_optimization_step`` copies used to each reimplement: iterating epochs,
drawing batches from a :class:`~repro.engine.samplers.BatchSampler`,
aggregating per-batch losses into epoch means, stepping the optimizer, and
dispatching callbacks.

The model supplies only a ``loss_fn(index) -> (reconstruction, kl)`` closure
returning *per-example* loss tensors for the indexed batch.  In non-private
mode the trainer minimises their mean; in private mode it runs the backward
pass on their *sum* inside :func:`repro.nn.grad_sample_mode` (DP-SGD needs
per-example gradients of a sum-decomposable loss, and itself divides by the
expected batch size).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.engine.checkpoint import Checkpoint, load_checkpoint, restore_trainer_state
from repro.engine.data_parallel import DataParallelExecutor, unflatten
from repro.engine.samplers import BatchSampler, PoissonSampler
from repro.nn import grad_sample_mode
from repro.utils.rng import as_generator

__all__ = ["Trainer"]


class Trainer:
    """Epoch/batch training loop with callback dispatch.

    Parameters
    ----------
    model:
        The object being trained; passed through to callbacks (and expected to
        expose ``history`` when :class:`~repro.engine.callbacks.HistoryLogger`
        is used without an explicit history).
    optimizer:
        A :class:`repro.nn.Optimizer` (non-private mode) or
        :class:`repro.privacy.DPSGD` (private mode).
    sampler:
        The batch-construction strategy.
    callbacks:
        Ordered iterable of :class:`~repro.engine.callbacks.Callback`.
    private:
        When true, each step's backward pass runs inside
        :func:`repro.nn.grad_sample_mode` on the summed per-example loss and
        ``optimizer.step()`` is expected to clip, noise, and zero the
        per-example gradients (the :class:`~repro.privacy.DPSGD` contract).
    rng:
        Random generator driving the sampler (models pass their own so batch
        order stays on the model's seed stream).
    """

    def __init__(
        self,
        model,
        optimizer,
        sampler: BatchSampler,
        callbacks=(),
        private: bool = False,
        rng=None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.sampler = sampler
        self.callbacks = list(callbacks)
        self.private = bool(private)
        self.rng = as_generator(rng)
        #: Set by callbacks (e.g. EarlyStopping) to end training after the
        #: current epoch.
        self.stop_training = False
        #: Progress counters: the epoch currently (or next) being run and the
        #: number of optimizer steps taken; both are checkpointed and restored.
        self.epoch = 0
        self.global_step = 0
        self._executor: Optional[DataParallelExecutor] = None

    def fit(
        self,
        n_samples: int,
        epochs: int,
        loss_fn: Callable[[np.ndarray], Tuple],
        resume_from=None,
        n_workers: int = 1,
    ) -> "Trainer":
        """Run ``epochs`` passes of ``loss_fn`` over ``n_samples`` records.

        Parameters
        ----------
        resume_from:
            A checkpoint directory (or loaded :class:`.Checkpoint`) written by
            :class:`repro.engine.CheckpointCallback`.  The trainer restores
            parameters, optimizer buffers, callback state, progress counters,
            and the sampler RNG, then continues from the checkpointed epoch —
            bit-identically to the uninterrupted run.  ``None`` trains from
            scratch.
        n_workers:
            With ``n_workers > 1``, each step's forward/backward is sharded
            across a fork-based process pool
            (:class:`repro.engine.DataParallelExecutor`); privacy accounting
            is unchanged because clipping stays per-example.
        """
        if n_samples is None or int(n_samples) < 1:
            raise ValueError(
                f"cannot train on an empty dataset: got n_samples={n_samples}; "
                "fit() requires at least one sample"
            )
        n_samples = int(n_samples)
        n_workers = int(n_workers)
        self.stop_training = False
        self.epoch = 0
        self.global_step = 0
        for callback in self.callbacks:
            callback.on_train_begin(self, self.model)
        base_seed = None
        if n_workers > 1:
            if self.private and not isinstance(self.sampler, PoissonSampler):
                raise ValueError(
                    "data-parallel private training supports Poisson sampling only "
                    "(the accountant analyzes Poisson subsampling; see repro.engine)"
                )
            # Drawn before any checkpoint restore: the original run consumed
            # this draw at the same stream position, so a resumed parallel run
            # derives the same per-(step, shard) worker seeds.
            base_seed = int(self.rng.integers(0, 2**63 - 1))
        if resume_from is not None:
            checkpoint = (
                resume_from
                if isinstance(resume_from, Checkpoint)
                else load_checkpoint(resume_from)
            )
            restore_trainer_state(self, checkpoint)
        start_epoch = self.epoch
        self._executor = None
        if n_workers > 1:
            self._executor = DataParallelExecutor(
                loss_fn,
                self.optimizer.params,
                n_workers,
                private=self.private,
                max_grad_norm=getattr(self.optimizer, "max_grad_norm", None),
                model_rng=self.rng,
                base_seed=base_seed,
            )
        try:
            for epoch in range(start_epoch, epochs):
                self.epoch = epoch
                epoch_recon, epoch_kl, batches = 0.0, 0.0, 0
                for index in self.sampler.epoch_batches(n_samples, self.rng):
                    if len(index) == 0:
                        # A Poisson draw can be empty; there is no gradient to
                        # release, so the step is skipped (strictly less is
                        # released than the accountant budgeted for).
                        continue
                    recon, kl = self._train_step(index, loss_fn)
                    epoch_recon += recon
                    epoch_kl += kl
                    batches += 1
                    self.global_step += 1
                    step_logs = {
                        "step": self.global_step,
                        "reconstruction_loss": recon,
                        "kl_loss": kl,
                    }
                    for callback in self.callbacks:
                        callback.on_step_end(self, self.model, self.global_step, step_logs)
                if batches == 0:
                    # Every Poisson draw of the epoch was empty: there are no
                    # losses to report.  Log NaN rather than a fabricated 0.0
                    # (which would read as a perfect epoch to history consumers
                    # and EarlyStopping); callbacks still fire so per-epoch hooks
                    # keep their one-call-per-epoch contract.
                    epoch_recon = epoch_kl = float("nan")
                    batches = 1
                logs = {
                    "epoch": epoch,
                    "reconstruction_loss": epoch_recon / batches,
                    "kl_loss": epoch_kl / batches,
                    "elbo_loss": (epoch_recon + epoch_kl) / batches,
                }
                for callback in self.callbacks:
                    callback.on_epoch_end(self, self.model, epoch, logs)
                self.epoch = epoch + 1
                if self.stop_training:
                    break
        finally:
            if self._executor is not None:
                self._executor.close()
                self._executor = None
        for callback in self.callbacks:
            callback.on_train_end(self, self.model)
        return self

    def _train_step(self, index: np.ndarray, loss_fn) -> Tuple[float, float]:
        """One optimizer step; returns the batch-mean (reconstruction, kl)."""
        if self._executor is not None:
            return self._parallel_step(index)
        if self.private:
            with grad_sample_mode():
                reconstruction, kl = loss_fn(index)
                (reconstruction + kl).sum().backward()
            self.optimizer.step()
        else:
            self.optimizer.zero_grad()
            reconstruction, kl = loss_fn(index)
            (reconstruction + kl).mean().backward()
            self.optimizer.step()
        return float(reconstruction.data.mean()), float(kl.data.mean())

    def _parallel_step(self, index: np.ndarray) -> Tuple[float, float]:
        """One sharded optimizer step through the fork pool."""
        result = self._executor.run_step(index, self.global_step)
        n = len(index)
        if self.private:
            # Workers clipped their own examples; one noise draw happens here,
            # inside the optimizer, exactly as in the serial step.
            self.optimizer.step_from_clipped(result.grad_sum, result.squared_norms)
        else:
            self.optimizer.apply_gradients(
                unflatten(result.grad_sum / n, self.optimizer.params)
            )
        return result.recon_sum / n, result.kl_sum / n

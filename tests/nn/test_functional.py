"""Tests for differentiable functional losses."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F
from tests.nn.test_autograd import numerical_grad


class TestSoftmaxFamily:
    def test_softmax_sums_to_one(self, rng):
        x = Tensor(rng.normal(size=(5, 7)))
        s = F.softmax(x, axis=-1)
        np.testing.assert_allclose(s.data.sum(axis=-1), np.ones(5), atol=1e-12)

    def test_logsumexp_matches_scipy(self, rng):
        from scipy.special import logsumexp as scipy_lse

        x = rng.normal(size=(4, 6)) * 10
        out = F.logsumexp(Tensor(x), axis=1)
        np.testing.assert_allclose(out.data, scipy_lse(x, axis=1), atol=1e-10)

    def test_logsumexp_gradient(self, rng):
        x_data = rng.normal(size=(3, 4))
        x = Tensor(x_data.copy(), requires_grad=True)
        F.logsumexp(x, axis=1).sum().backward()
        numeric = numerical_grad(
            lambda a: F.logsumexp(Tensor(a), axis=1).sum().item(), x_data.copy()
        )
        np.testing.assert_allclose(x.grad, numeric, atol=1e-6)

    def test_log_softmax_is_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(5, 3)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-10
        )


class TestLosses:
    def test_bce_matches_formula(self, rng):
        p = rng.uniform(0.05, 0.95, size=(8, 3))
        t = rng.integers(0, 2, size=(8, 3)).astype(float)
        loss = F.binary_cross_entropy(Tensor(p), t, reduction="mean")
        expected = -(t * np.log(p) + (1 - t) * np.log(1 - p)).mean()
        np.testing.assert_allclose(loss.item(), expected, atol=1e-10)

    def test_bce_with_logits_matches_probability_version(self, rng):
        logits = rng.normal(size=(10, 4))
        t = rng.integers(0, 2, size=(10, 4)).astype(float)
        a = F.binary_cross_entropy_with_logits(Tensor(logits), t).item()
        p = 1 / (1 + np.exp(-logits))
        b = F.binary_cross_entropy(Tensor(p), t).item()
        np.testing.assert_allclose(a, b, atol=1e-8)

    def test_bce_logits_gradient(self, rng):
        logits = rng.normal(size=(5, 2))
        t = rng.integers(0, 2, size=(5, 2)).astype(float)
        x = Tensor(logits.copy(), requires_grad=True)
        F.binary_cross_entropy_with_logits(x, t, reduction="sum").backward()
        numeric = numerical_grad(
            lambda a: F.binary_cross_entropy_with_logits(Tensor(a), t, reduction="sum").item(),
            logits.copy(),
        )
        np.testing.assert_allclose(x.grad, numeric, atol=1e-5)

    def test_mse(self, rng):
        a = rng.normal(size=(6, 2))
        b = rng.normal(size=(6, 2))
        np.testing.assert_allclose(
            F.mse_loss(Tensor(a), b).item(), ((a - b) ** 2).mean(), atol=1e-12
        )

    def test_gaussian_nll_at_mean_depends_only_on_variance(self):
        mean = Tensor(np.zeros((4, 3)))
        log_var = Tensor(np.zeros((4, 3)))
        nll = F.gaussian_nll(mean, log_var, np.zeros((4, 3))).item()
        np.testing.assert_allclose(nll, 0.5 * np.log(2 * np.pi), atol=1e-12)

    def test_cross_entropy_uniform_logits(self):
        logits = Tensor(np.zeros((5, 4)))
        onehot = np.eye(4)[np.array([0, 1, 2, 3, 0])]
        ce = F.cross_entropy(logits, onehot).item()
        np.testing.assert_allclose(ce, np.log(4), atol=1e-12)


class TestKLTerms:
    def test_kl_standard_normal_zero_for_standard_normal(self):
        mu = Tensor(np.zeros((7, 3)))
        log_var = Tensor(np.zeros((7, 3)))
        assert abs(F.kl_standard_normal(mu, log_var).item()) < 1e-12

    def test_kl_standard_normal_positive(self, rng):
        mu = Tensor(rng.normal(size=(7, 3)))
        log_var = Tensor(rng.normal(size=(7, 3)))
        assert F.kl_standard_normal(mu, log_var).item() > 0

    def test_kl_diag_gaussians_zero_when_equal(self, rng):
        mu = rng.normal(size=(5, 4))
        lv = rng.normal(size=(5, 4))
        kl = F.kl_diag_gaussians(Tensor(mu), Tensor(lv), mu, lv)
        np.testing.assert_allclose(kl.data, np.zeros(5), atol=1e-12)

    def test_kl_diag_gaussians_matches_closed_form(self, rng):
        mu_q = rng.normal(size=(3, 2))
        lv_q = rng.normal(size=(3, 2)) * 0.1
        mu_p = rng.normal(size=(2,))
        lv_p = rng.normal(size=(2,)) * 0.1
        kl = F.kl_diag_gaussians(Tensor(mu_q), Tensor(lv_q), mu_p, lv_p).data
        vq, vp = np.exp(lv_q), np.exp(lv_p)
        expected = 0.5 * (lv_p - lv_q + (vq + (mu_q - mu_p) ** 2) / vp - 1).sum(axis=1)
        np.testing.assert_allclose(kl, expected, atol=1e-12)

    def test_kl_gradient(self, rng):
        mu_data = rng.normal(size=(4, 3))
        lv_data = rng.normal(size=(4, 3)) * 0.2
        mu = Tensor(mu_data.copy(), requires_grad=True)
        lv = Tensor(lv_data.copy(), requires_grad=True)
        F.kl_standard_normal(mu, lv, reduction="sum").backward()
        numeric_mu = numerical_grad(
            lambda a: F.kl_standard_normal(Tensor(a), Tensor(lv_data), reduction="sum").item(),
            mu_data.copy(),
        )
        np.testing.assert_allclose(mu.grad, numeric_mu, atol=1e-6)


class TestReductionModes:
    @pytest.mark.parametrize("reduction", ["mean", "sum", "none"])
    def test_reductions_exist(self, rng, reduction):
        p = rng.uniform(0.1, 0.9, size=(4, 2))
        t = np.ones((4, 2))
        out = F.binary_cross_entropy(Tensor(p), t, reduction=reduction)
        if reduction == "none":
            assert out.shape == (4, 2)
        else:
            assert out.shape == ()

    def test_unknown_reduction_raises(self):
        with pytest.raises(ValueError):
            F.mse_loss(Tensor(np.ones(3)), np.ones(3), reduction="bogus")

"""HTTP <-> in-process conformance: the network tier adds transport, not drift.

For every registered synthesizer, a seeded ``POST /sample`` body must decode
to arrays **bit-identical** to ``SynthesisService.sample(ref, n, seed=s)`` —
in model space, in original space (through the artifact's stored
transformer), and for labelled streams including exact per-class counts.
"""

import json

import numpy as np
import pytest

from repro.server.protocol import to_jsonable
from repro.serving.registry import registered_synthesizers
from server_kit import serve_root

N, SEED, CHUNK = 37, 11, 16

MODELS = registered_synthesizers()


@pytest.fixture(scope="module")
def http(mixed_artifact_root):
    with serve_root(mixed_artifact_root, workers=4) as running:
        yield running


def expected_rows(reference, labels=None):
    """The reference arrays in wire form: native python values per row."""
    rows = [[to_jsonable(cell) for cell in row] for row in np.asarray(reference)]
    if labels is not None:
        for row, label in zip(rows, labels):
            row.append(to_jsonable(label))
    return rows


class TestModelSpace:
    @pytest.mark.parametrize("name", MODELS)
    def test_sample_is_bit_identical(self, http, name):
        _, client, service = http
        got = client.sample(name, N, seed=SEED, chunk_size=CHUNK, model_space=True)
        reference = service.sample(name, N, seed=SEED, chunk_size=CHUNK)
        arr = np.array(got, dtype=np.float64)
        assert arr.shape == reference.shape
        assert np.array_equal(arr, reference)

    @pytest.mark.parametrize("name", MODELS)
    def test_sample_labeled_is_bit_identical(self, http, name):
        _, client, service = http
        got = client.sample(
            name, N, seed=SEED, chunk_size=CHUNK, model_space=True, labeled=True
        )
        X, y = service.sample_labeled(name, N, seed=SEED, chunk_size=CHUNK)
        features = np.array([row[:-1] for row in got], dtype=np.float64)
        labels = [row[-1] for row in got]
        assert np.array_equal(features, X)
        assert labels == [to_jsonable(label) for label in y]

    def test_labeled_class_counts_match(self, http):
        _, client, service = http
        got = client.sample(
            "vae", 60, seed=5, chunk_size=7, model_space=True, labeled=True
        )
        _, y = service.sample_labeled("vae", 60, seed=5, chunk_size=7)
        wire_counts = {}
        for row in got:
            wire_counts[row[-1]] = wire_counts.get(row[-1], 0) + 1
        ref_counts = {
            to_jsonable(label): int(count)
            for label, count in zip(*np.unique(y, return_counts=True))
        }
        assert wire_counts == ref_counts


class TestOriginalSpace:
    @pytest.mark.parametrize("name", MODELS)
    def test_sample_decodes_identically(self, http, name):
        _, client, service = http
        # Original space is the HTTP default for transformer-carrying artifacts.
        got = client.sample(name, N, seed=SEED, chunk_size=CHUNK)
        reference = np.vstack(
            list(service.stream(name, N, seed=SEED, chunk_size=CHUNK, original_space=True))
        )
        assert got == expected_rows(reference)

    @pytest.mark.parametrize("name", MODELS)
    def test_sample_labeled_decodes_identically(self, http, name):
        _, client, service = http
        got = client.sample(name, N, seed=SEED, chunk_size=CHUNK, labeled=True)
        chunks = list(
            service.stream_labeled(name, N, seed=SEED, chunk_size=CHUNK, original_space=True)
        )
        reference = np.vstack([chunk[0] for chunk in chunks])
        labels = np.concatenate([chunk[1] for chunk in chunks])
        assert got == expected_rows(reference, labels)

    def test_rows_carry_real_category_labels(self, http):
        _, client, service = http
        transformer = service.transformer("vae")
        got = client.sample("vae", 25, seed=2)
        names = list(transformer.schema.names)
        assert all(len(row) == len(names) for row in got)
        workclass = {row[names.index("workclass")] for row in got}
        assert workclass <= {"Private", "Self-employed", "Government", "Unemployed"}
        assert workclass  # decoded strings, not one-hot floats


class TestFormats:
    def test_csv_matches_ndjson_bit_for_bit(self, http):
        _, client, service = http
        ndjson = client.sample("vae", 19, seed=7, chunk_size=8, model_space=True)
        raw = client.sample_raw(
            "vae", 19, seed=7, chunk_size=8, fmt="csv", model_space=True
        )
        lines = raw.decode("utf-8").splitlines()
        header, body = lines[0], lines[1:]
        assert header.startswith("feature_0,")
        csv_rows = [[float(cell) for cell in line.split(",")] for line in body]
        assert csv_rows == ndjson
        reference = service.sample("vae", 19, seed=7, chunk_size=8)
        assert np.array_equal(np.array(csv_rows, dtype=np.float64), reference)

    def test_csv_header_is_optional_and_named_for_original_space(self, http):
        _, client, service = http
        raw = client.sample_raw("vae", 4, seed=1, fmt="csv", labeled=True)
        header = raw.decode("utf-8").splitlines()[0]
        assert header == ",".join(list(service.transformer("vae").schema.names) + ["label"])
        bare = client.sample_raw("vae", 4, seed=1, fmt="csv", labeled=True, header=False)
        assert raw.decode("utf-8").splitlines()[1:] == bare.decode("utf-8").splitlines()

    def test_ndjson_lines_are_parseable_json_arrays(self, http):
        _, client, _ = http
        raw = client.sample_raw("privbayes", 9, seed=3)
        lines = raw.decode("utf-8").splitlines()
        assert len(lines) == 9
        assert all(isinstance(json.loads(line), list) for line in lines)


class TestDescribe:
    @pytest.mark.parametrize("name", MODELS)
    def test_model_endpoint_reports_manifest_and_privacy(self, http, name):
        _, client, service = http
        description = client.model(name)
        manifest = service.manifest(name)
        assert description["model_class"] == manifest["model_class"]
        assert description["privacy"] == manifest["privacy"]
        assert description["labeled"] is True
        assert description["original_space"] is True

    def test_models_endpoint_lists_the_whole_registry(self, http):
        _, client, _ = http
        assert client.models() == sorted(MODELS)

    def test_metrics_cache_shows_refs_not_server_paths(self, http):
        _, client, _ = http
        client.sample("vae", 3, seed=0)
        cached = client.metrics()["cache"]["cached"]
        assert cached  # the sampled model is resident
        assert all("/" not in entry for entry in cached)
        assert "vae" in cached

"""SynthesisService tests: LRU cache, bounded streaming, per-request seeds."""

import numpy as np
import pytest

from repro.serving import ArtifactError, SynthesisService, save_artifact


@pytest.fixture(scope="module")
def artifact_root(fitted_models, tmp_path_factory):
    root = tmp_path_factory.mktemp("artifacts")
    for name in ("vae", "pgm", "privbayes"):
        save_artifact(fitted_models[name], root / name)
    return root


class TestResolutionAndCache:
    def test_resolves_relative_to_artifact_root(self, artifact_root):
        service = SynthesisService(artifact_root=artifact_root)
        assert service.sample("vae", 5, seed=0).shape[0] == 5

    def test_registered_names_resolve(self, artifact_root):
        service = SynthesisService()
        service.register("prod", artifact_root / "pgm")
        assert service.sample("prod", 5, seed=0).shape[0] == 5

    def test_missing_artifact_raises(self, artifact_root):
        service = SynthesisService(artifact_root=artifact_root)
        with pytest.raises(ArtifactError, match="no artifact found"):
            service.get("nope")

    def test_cache_hits_return_the_same_object(self, artifact_root):
        service = SynthesisService(artifact_root=artifact_root, cache_size=2)
        first = service.get("vae")
        second = service.get("vae")
        assert first is second
        assert service.cache_stats["hits"] == 1
        assert service.cache_stats["misses"] == 1

    def test_lru_eviction_is_bounded_and_evicts_least_recent(self, artifact_root):
        service = SynthesisService(artifact_root=artifact_root, cache_size=2)
        vae = service.get("vae")
        service.get("pgm")
        service.get("vae")  # refresh: pgm is now least recently used
        service.get("privbayes")  # evicts pgm
        stats = service.cache_stats
        assert stats["size"] == 2
        assert [name.split("/")[-1] for name in stats["cached"]] == ["vae", "privbayes"]
        assert service.get("vae") is vae  # still cached
        service.evict()
        assert service.cache_stats["size"] == 0


class TestStreaming:
    def test_chunks_are_bounded_and_cover_the_request(self, artifact_root):
        service = SynthesisService(artifact_root=artifact_root)
        chunks = list(service.stream("vae", 10, seed=0, chunk_size=4))
        assert [len(chunk) for chunk in chunks] == [4, 4, 2]

    def test_same_seed_and_chunking_is_reproducible(self, artifact_root):
        service = SynthesisService(artifact_root=artifact_root)
        a = service.sample("vae", 20, seed=123, chunk_size=8)
        b = service.sample("vae", 20, seed=123, chunk_size=8)
        c = service.sample("vae", 20, seed=124, chunk_size=8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        # Reproducibility is independent of earlier requests on the service.
        service.sample("vae", 7, seed=9)
        assert np.array_equal(service.sample("vae", 20, seed=123, chunk_size=8), a)

    def test_labeled_streaming_matches_ratio_per_chunk(self, artifact_root, fitted_models):
        service = SynthesisService(artifact_root=artifact_root)
        chunks = list(service.stream_labeled("vae", 40, seed=0, chunk_size=20))
        assert len(chunks) == 2
        X, y = service.sample_labeled("vae", 40, seed=0, chunk_size=20)
        assert X.shape == (40, fitted_models["vae"].n_feature_columns)
        assert y.shape == (40,)
        assert set(np.unique(y)) <= {0, 1}

    def test_chunked_streaming_preserves_rare_classes(self, tmp_path):
        # A class with ratio < 0.5/chunk_size would round to zero in every
        # chunk under naive per-chunk quotas; the service must allocate chunk
        # counts against the whole request's quota instead.
        from repro.models import VAE

        rng = np.random.default_rng(0)
        X = np.clip(0.5 + 0.1 * rng.normal(size=(500, 5)), 0, 1)
        y = np.zeros(500, dtype=int)
        y[:2] = 1  # minority ratio 0.004
        model = VAE(latent_dim=2, hidden=(8,), epochs=1, batch_size=100, random_state=0)
        save_artifact(model.fit(X, y), tmp_path / "rare")

        service = SynthesisService(artifact_root=tmp_path)
        _, labels = service.sample_labeled("rare", 1000, seed=0, chunk_size=100)
        counts = {int(c): int(n) for c, n in zip(*np.unique(labels, return_counts=True))}
        assert counts == {0: 996, 1: 4}

    def test_invalid_requests_raise_the_shared_error(self, artifact_root):
        service = SynthesisService(artifact_root=artifact_root)
        with pytest.raises(ValueError, match="n_samples must be a positive integer"):
            list(service.stream("vae", 0))
        with pytest.raises(ValueError, match="n_samples must be a positive integer"):
            service.sample("vae", 2.5)

    def test_manifest_and_privacy_shortcuts(self, artifact_root):
        service = SynthesisService(artifact_root=artifact_root)
        assert service.manifest("vae")["model_class"] == "VAE"
        eps, delta = service.privacy("vae")
        assert np.isinf(eps) and delta == 0.0

"""Gaussian mixture models fitted with expectation-maximisation.

The mixture of Gaussians is the latent prior ``r_lambda(z)`` of P3GM's
Encoding Phase.  The implementation supports diagonal and full covariance,
responsibility-based E steps, log-density evaluation, and ancestral sampling
(used by the data-synthesis procedure: draw ``z ~ MoG(lambda)``, then decode).

The differentially private estimator (DP-EM, Park et al.) extends the M step
with Gaussian noise; see :mod:`repro.mixture.dp_em`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.special import logsumexp

from repro.utils.rng import as_generator
from repro.utils.validation import check_array

__all__ = ["GaussianMixture"]

_LOG_2PI = float(np.log(2.0 * np.pi))


class GaussianMixture:
    """Mixture of Gaussians estimated by EM.

    Parameters
    ----------
    n_components:
        Number of mixture components ``K`` (the paper's ``d_m``; 3 in the
        experiments).
    covariance_type:
        ``"diag"`` (default, used by P3GM so the decoder-phase KL term has a
        cheap closed form) or ``"full"``.
    n_iter:
        Number of EM iterations (``T_e``).
    reg_covar:
        Variance floor added to covariance diagonals for numerical stability.
    """

    def __init__(
        self,
        n_components: int = 3,
        covariance_type: str = "diag",
        n_iter: int = 50,
        reg_covar: float = 1e-6,
        random_state=None,
    ):
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        if covariance_type not in ("diag", "full"):
            raise ValueError("covariance_type must be 'diag' or 'full'")
        if n_iter < 1:
            raise ValueError("n_iter must be >= 1")
        self.n_components = n_components
        self.covariance_type = covariance_type
        self.n_iter = n_iter
        self.reg_covar = reg_covar
        self._rng = as_generator(random_state)

        self.weights_: Optional[np.ndarray] = None
        self.means_: Optional[np.ndarray] = None
        self.covariances_: Optional[np.ndarray] = None
        self.log_likelihood_history_: list[float] = []

    # -- initialisation ------------------------------------------------------------

    def _initialise(self, X: np.ndarray) -> None:
        n_samples, n_features = X.shape
        indices = self._rng.choice(n_samples, size=self.n_components, replace=False)
        self.means_ = X[indices].copy()
        self.weights_ = np.full(self.n_components, 1.0 / self.n_components)
        global_var = X.var(axis=0) + self.reg_covar
        if self.covariance_type == "diag":
            self.covariances_ = np.tile(global_var, (self.n_components, 1))
        else:
            self.covariances_ = np.tile(np.diag(global_var), (self.n_components, 1, 1))

    # -- densities --------------------------------------------------------------------

    def _component_log_density(self, X: np.ndarray) -> np.ndarray:
        """Log density of each sample under each component; shape (n, K)."""
        n_samples, n_features = X.shape
        log_prob = np.empty((n_samples, self.n_components))
        for k in range(self.n_components):
            diff = X - self.means_[k]
            if self.covariance_type == "diag":
                var = self.covariances_[k]
                log_det = np.sum(np.log(var))
                maha = np.sum(diff**2 / var, axis=1)
            else:
                cov = self.covariances_[k]
                sign, log_det = np.linalg.slogdet(cov)
                if sign <= 0:
                    cov = cov + np.eye(n_features) * self.reg_covar
                    sign, log_det = np.linalg.slogdet(cov)
                solved = np.linalg.solve(cov, diff.T).T
                maha = np.sum(diff * solved, axis=1)
            log_prob[:, k] = -0.5 * (n_features * _LOG_2PI + log_det + maha)
        return log_prob

    def score_samples(self, X) -> np.ndarray:
        """Log density of each sample under the mixture."""
        self._check_fitted()
        X = check_array(X, "X")
        weighted = self._component_log_density(X) + np.log(self.weights_)
        return logsumexp(weighted, axis=1)

    def score(self, X) -> float:
        """Mean log-likelihood of ``X``."""
        return float(np.mean(self.score_samples(X)))

    def predict_proba(self, X) -> np.ndarray:
        """Posterior responsibilities ``p(component | x)``; shape (n, K)."""
        self._check_fitted()
        X = check_array(X, "X")
        weighted = self._component_log_density(X) + np.log(self.weights_)
        weighted -= logsumexp(weighted, axis=1, keepdims=True)
        return np.exp(weighted)

    def predict(self, X) -> np.ndarray:
        """Most likely component for each sample."""
        return np.argmax(self.predict_proba(X), axis=1)

    # -- EM -------------------------------------------------------------------------------

    def fit(self, X) -> "GaussianMixture":
        X = check_array(X, "X")
        if len(X) < self.n_components:
            raise ValueError("need at least n_components samples to fit the mixture")
        self._initialise(X)
        self.log_likelihood_history_ = []
        for _ in range(self.n_iter):
            responsibilities = self._e_step(X)
            self._m_step(X, responsibilities)
            self.log_likelihood_history_.append(self.score(X))
        return self

    def _e_step(self, X: np.ndarray) -> np.ndarray:
        weighted = self._component_log_density(X) + np.log(self.weights_)
        weighted -= logsumexp(weighted, axis=1, keepdims=True)
        return np.exp(weighted)

    def _m_step(self, X: np.ndarray, responsibilities: np.ndarray) -> None:
        counts = responsibilities.sum(axis=0) + 1e-12
        self.weights_ = counts / counts.sum()
        self.means_ = (responsibilities.T @ X) / counts[:, None]
        if self.covariance_type == "diag":
            covariances = np.empty_like(self.means_)
            for k in range(self.n_components):
                diff = X - self.means_[k]
                covariances[k] = (responsibilities[:, k] @ diff**2) / counts[k]
            self.covariances_ = covariances + self.reg_covar
        else:
            n_features = X.shape[1]
            covariances = np.empty((self.n_components, n_features, n_features))
            for k in range(self.n_components):
                diff = X - self.means_[k]
                weighted = responsibilities[:, k][:, None] * diff
                covariances[k] = weighted.T @ diff / counts[k]
                covariances[k] += np.eye(n_features) * self.reg_covar
            self.covariances_ = covariances

    # -- sampling -----------------------------------------------------------------------------

    def sample(self, n_samples: int, rng=None):
        """Draw ``n_samples`` from the mixture; returns ``(samples, component_labels)``."""
        self._check_fitted()
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        rng = self._rng if rng is None else as_generator(rng)
        labels = rng.choice(self.n_components, size=n_samples, p=self.weights_)
        n_features = self.means_.shape[1]
        samples = np.empty((n_samples, n_features))
        for k in range(self.n_components):
            mask = labels == k
            count = int(mask.sum())
            if count == 0:
                continue
            if self.covariance_type == "diag":
                std = np.sqrt(self.covariances_[k])
                samples[mask] = self.means_[k] + rng.normal(size=(count, n_features)) * std
            else:
                samples[mask] = rng.multivariate_normal(
                    self.means_[k], self.covariances_[k], size=count
                )
        return samples, labels

    # -- parameter access ------------------------------------------------------------------------

    def diagonal_covariances(self) -> np.ndarray:
        """Return per-component diagonal variances regardless of covariance type."""
        self._check_fitted()
        if self.covariance_type == "diag":
            return self.covariances_.copy()
        return np.array([np.diag(c) for c in self.covariances_])

    def set_parameters(self, weights, means, covariances) -> "GaussianMixture":
        """Directly set mixture parameters (used by DP-EM and deserialisation)."""
        weights = np.asarray(weights, dtype=np.float64)
        means = np.asarray(means, dtype=np.float64)
        covariances = np.asarray(covariances, dtype=np.float64)
        if weights.shape != (self.n_components,):
            raise ValueError("weights have the wrong shape")
        if means.shape[0] != self.n_components:
            raise ValueError("means have the wrong shape")
        if covariances.shape[0] != self.n_components:
            raise ValueError("covariances have the wrong shape")
        if not np.isclose(weights.sum(), 1.0):
            raise ValueError("weights must sum to 1")
        self.weights_ = weights
        self.means_ = means
        self.covariances_ = covariances
        return self

    def _check_fitted(self) -> None:
        if self.weights_ is None:
            raise RuntimeError("GaussianMixture is not fitted yet; call fit() first")

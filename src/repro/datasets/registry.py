"""Dataset registry: name-based access to every simulator (paper Table III)."""

from __future__ import annotations

from repro.datasets.images import make_fashion_mnist, make_mnist
from repro.datasets.tabular import (
    make_adult,
    make_adult_mixed,
    make_credit,
    make_esr,
    make_isolet,
)

__all__ = ["DATASET_REGISTRY", "load_dataset", "dataset_summaries"]

DATASET_REGISTRY = {
    "credit": make_credit,
    "adult": make_adult,
    "adult_mixed": make_adult_mixed,
    "isolet": make_isolet,
    "esr": make_esr,
    "mnist": make_mnist,
    "fashion_mnist": make_fashion_mnist,
}

#: Default simulated sample sizes: scaled down from the paper's Table III so a
#: full experiment sweep runs on a laptop-class machine; pass ``n_samples`` to
#: ``load_dataset`` to change them.
DEFAULT_SIZES = {
    "credit": 20000,
    "adult": 10000,
    "adult_mixed": 8000,
    "isolet": 3000,
    "esr": 4000,
    "mnist": 4000,
    "fashion_mnist": 4000,
}


def load_dataset(name: str, n_samples=None, random_state=None, subsample=None):
    """Instantiate a simulated dataset by name.

    Parameters
    ----------
    name:
        One of ``credit``, ``adult``, ``adult_mixed``, ``isolet``, ``esr``,
        ``mnist``, ``fashion_mnist``.  ``adult_mixed`` is the mixed-type
        (strings + raw numerics) variant whose features must go through a
        :class:`repro.transforms.TableTransformer` before synthesis.
    n_samples:
        Total number of rows to simulate (defaults to a laptop-friendly size).
    random_state:
        Seed or generator controlling the simulation (and the subsampling).
    subsample:
        Optional trial-level row subsampling applied *after* simulation: a
        ``float`` fraction in ``(0, 1]`` or an ``int`` training-row count
        (see :meth:`repro.datasets.base.Dataset.subsample`).  Simulating the full
        population and then subsampling keeps population statistics stable
        across trials that use different row budgets — the experiment
        runner's miniaturized grids rely on this.
    """
    key = name.lower()
    if key not in DATASET_REGISTRY:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_REGISTRY)}"
        )
    size = n_samples if n_samples is not None else DEFAULT_SIZES[key]
    dataset = DATASET_REGISTRY[key](n_samples=size, random_state=random_state)
    if subsample is not None:
        dataset = dataset.subsample(subsample, random_state=random_state)
    return dataset


def dataset_summaries(n_samples=None, random_state=0) -> list:
    """Summaries of every simulated dataset (the reproduction's Table III)."""
    return [
        load_dataset(name, n_samples=n_samples, random_state=random_state).summary()
        for name in DATASET_REGISTRY
    ]

"""Span tracing: nesting, correlation ids, and the emitted JSONL records."""

import io
import json
import threading

import pytest

from repro.obs import Span, Tracer, configure_tracer, current_span, get_tracer
from repro.utils.logging import StructuredLogger


@pytest.fixture
def sink():
    return io.StringIO()


@pytest.fixture
def tracer(sink):
    return Tracer(StructuredLogger(sink))


def emitted(sink):
    return [json.loads(line) for line in sink.getvalue().splitlines()]


class TestSpanTree:
    def test_children_inherit_trace_id_and_point_at_parent(self, tracer, sink):
        with tracer.span("http.request") as root:
            with tracer.span("model.sample") as child:
                with tracer.span("transform.inverse") as grandchild:
                    pass
        records = {record["name"]: record for record in emitted(sink)}
        assert len(records) == 3
        assert records["model.sample"]["trace_id"] == root.trace_id
        assert records["transform.inverse"]["trace_id"] == root.trace_id
        assert records["model.sample"]["parent_id"] == root.span_id
        assert records["transform.inverse"]["parent_id"] == child.span_id
        assert records["http.request"]["parent_id"] is None

    def test_children_close_before_parents_in_the_stream(self, tracer, sink):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [record["name"] for record in emitted(sink)]
        assert names == ["inner", "outer"]

    def test_sibling_spans_share_a_parent_not_each_other(self, tracer, sink):
        with tracer.span("outer") as outer:
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        records = {record["name"]: record for record in emitted(sink)}
        assert records["first"]["parent_id"] == outer.span_id
        assert records["second"]["parent_id"] == outer.span_id

    def test_current_span_tracks_the_stack(self, tracer):
        assert current_span() is None
        with tracer.span("outer") as outer:
            assert current_span() is outer
            with tracer.span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None


class TestCorrelationIds:
    def test_explicit_trace_id_pins_the_root(self, tracer, sink):
        with tracer.span("experiment.trial", trace_id="abc123"):
            with tracer.span("model.fit"):
                pass
        for record in emitted(sink):
            assert record["trace_id"] == "abc123"

    def test_roots_without_explicit_ids_get_distinct_traces(self, tracer, sink):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        ids = {record["trace_id"] for record in emitted(sink)}
        assert len(ids) == 2

    def test_nesting_is_per_thread(self, tracer):
        observed = {}

        def worker(name):
            with tracer.span(name) as span:
                observed[name] = (span.parent_id, span.trace_id)

        with tracer.span("main-root"):
            threads = [
                threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        # Worker threads never see the main thread's ambient span.
        for parent_id, _ in observed.values():
            assert parent_id is None
        assert len({trace_id for _, trace_id in observed.values()}) == 4


class TestRecords:
    def test_record_shape(self, tracer, sink):
        with tracer.span("model.sample", rows=512) as span:
            span.annotate(chunks=2)
        (record,) = emitted(sink)
        assert record["event"] == "span"
        assert record["name"] == "model.sample"
        assert record["status"] == "ok"
        assert record["rows"] == 512
        assert record["chunks"] == 2
        assert record["duration_ms"] >= 0
        assert "ts" in record

    def test_exceptions_mark_the_span_as_error_and_propagate(self, tracer, sink):
        with pytest.raises(RuntimeError):
            with tracer.span("model.fit"):
                raise RuntimeError("nan loss")
        (record,) = emitted(sink)
        assert record["status"] == "error"
        assert record["error"] == "RuntimeError"

    def test_disabled_tracer_still_nests_but_writes_nothing(self, sink):
        tracer = Tracer(None)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        assert sink.getvalue() == ""
        assert not tracer.enabled


class TestProcessWideTracer:
    def test_configure_tracer_attaches_and_detaches(self, sink):
        tracer = configure_tracer(StructuredLogger(sink))
        try:
            assert tracer is get_tracer()
            with tracer.span("cli.obs"):
                pass
            assert emitted(sink)[0]["name"] == "cli.obs"
        finally:
            configure_tracer(None)
        assert not get_tracer().enabled

"""Weight initialisation schemes for the neural layers."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["xavier_uniform", "kaiming_uniform", "normal", "zeros"]


def xavier_uniform(shape, rng=None, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a (fan_in, fan_out) matrix."""
    rng = as_generator(rng)
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def kaiming_uniform(shape, rng=None) -> np.ndarray:
    """He/Kaiming uniform initialisation, suited to ReLU networks."""
    rng = as_generator(rng)
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def normal(shape, rng=None, std: float = 0.01) -> np.ndarray:
    """Small Gaussian initialisation."""
    rng = as_generator(rng)
    return rng.normal(0.0, std, size=shape)


def zeros(shape, rng=None) -> np.ndarray:
    """All-zero initialisation (used for biases)."""
    return np.zeros(shape)


def _fans(shape) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive

"""Property-based gradient checks for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Tensor
from tests.nn.test_autograd import numerical_grad

small_floats = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False)
matrices = arrays(np.float64, st.tuples(st.integers(1, 5), st.integers(1, 4)), elements=small_floats)


class TestAutogradProperties:
    @given(matrices)
    @settings(max_examples=40, deadline=None)
    def test_composite_expression_gradient_matches_numerical(self, x_data):
        def expression(t):
            return ((t * 2.0 + 1.0).tanh() * t.sigmoid()).sum()

        x = Tensor(x_data.copy(), requires_grad=True)
        expression(x).backward()
        numeric = numerical_grad(lambda a: expression(Tensor(a)).item(), x_data.copy())
        np.testing.assert_allclose(x.grad, numeric, atol=1e-5, rtol=1e-4)

    @given(matrices)
    @settings(max_examples=40, deadline=None)
    def test_sum_of_parts_equals_whole(self, x_data):
        x = Tensor(x_data)
        total = x.sum().item()
        by_axis = x.sum(axis=0).sum().item()
        assert np.isclose(total, by_axis)

    @given(matrices, matrices)
    @settings(max_examples=40, deadline=None)
    def test_addition_gradient_is_ones(self, a_data, b_data):
        rows = min(len(a_data), len(b_data))
        cols = min(a_data.shape[1], b_data.shape[1])
        a = Tensor(a_data[:rows, :cols].copy(), requires_grad=True)
        b = Tensor(b_data[:rows, :cols].copy(), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((rows, cols)))
        np.testing.assert_allclose(b.grad, np.ones((rows, cols)))

    @given(matrices)
    @settings(max_examples=40, deadline=None)
    def test_softplus_greater_than_relu(self, x_data):
        x = Tensor(x_data)
        assert np.all(x.softplus().data >= x.relu().data - 1e-12)

    @given(matrices)
    @settings(max_examples=40, deadline=None)
    def test_sigmoid_output_in_unit_interval(self, x_data):
        out = Tensor(x_data).sigmoid().data
        assert np.all((out > 0) & (out < 1))

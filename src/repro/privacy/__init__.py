"""``repro.privacy`` — differential-privacy mechanisms, DP-SGD, and accounting."""

from repro.privacy import accounting
from repro.privacy.clipping import (
    clip_by_l2_norm,
    clip_rows,
    fused_clip_sum,
    per_example_clip,
    per_example_scale_factors,
)
from repro.privacy.dp_sgd import DPSGD
from repro.privacy.mechanisms import (
    gaussian_mechanism,
    gaussian_sigma,
    laplace_mechanism,
    wishart_mechanism,
    wishart_noise,
)

__all__ = [
    "accounting",
    "gaussian_sigma",
    "gaussian_mechanism",
    "laplace_mechanism",
    "wishart_noise",
    "wishart_mechanism",
    "clip_by_l2_norm",
    "clip_rows",
    "per_example_clip",
    "per_example_scale_factors",
    "fused_clip_sum",
    "DPSGD",
]

"""Artifact round-trip and manifest validation tests.

The satellite requirement: every registered synthesizer must round-trip
``fit -> save -> load`` into a fresh object that draws *bit-identical* samples
under the same seed and reports the exact same privacy guarantee.
"""

import json

import numpy as np
import pytest

from repro.serving import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactError,
    load_artifact,
    manifest_privacy,
    read_manifest,
    registered_synthesizers,
    save_artifact,
)

ALL_NAMES = registered_synthesizers()


def test_fitted_models_cover_the_whole_registry(fitted_models):
    assert tuple(sorted(fitted_models)) == ALL_NAMES


@pytest.mark.parametrize("name", ALL_NAMES)
class TestRoundTrip:
    def test_seeded_sample_is_bit_identical_after_reload(self, name, fitted_models, tmp_path):
        model = fitted_models[name]
        path = save_artifact(model, tmp_path / name)
        loaded = load_artifact(path)
        assert type(loaded) is type(model)
        original = model.sample(64, rng=np.random.default_rng(11))
        reloaded = loaded.sample(64, rng=np.random.default_rng(11))
        assert np.array_equal(original, reloaded)

    def test_seeded_labeled_sample_round_trips(self, name, fitted_models, tmp_path):
        model = fitted_models[name]
        loaded = load_artifact(save_artifact(model, tmp_path / name))
        Xa, ya = model.sample_labeled(
            32, rng=np.random.default_rng(5), generation_rng=np.random.default_rng(6)
        )
        Xb, yb = loaded.sample_labeled(
            32, rng=np.random.default_rng(5), generation_rng=np.random.default_rng(6)
        )
        assert np.array_equal(Xa, Xb)
        assert np.array_equal(ya, yb)

    def test_privacy_guarantee_round_trips_exactly(self, name, fitted_models, tmp_path):
        model = fitted_models[name]
        path = save_artifact(model, tmp_path / name)
        loaded = load_artifact(path)
        # Exact equality, not approximate: releasing a model must not change
        # the stated (epsilon, delta) by even one ulp.
        assert loaded.privacy_spent() == model.privacy_spent()
        # The manifest records the same guarantee for zero-load inspection.
        eps, delta = manifest_privacy(read_manifest(path))
        assert (eps, delta) == model.privacy_spent()

    def test_manifest_records_class_config_and_schema(self, name, fitted_models, tmp_path):
        model = fitted_models[name]
        manifest = read_manifest(save_artifact(model, tmp_path / name, name=f"rel-{name}"))
        assert manifest["format_version"] == ARTIFACT_FORMAT_VERSION
        assert manifest["model_class"] == type(model).__name__
        assert manifest["name"] == f"rel-{name}"
        assert manifest["hyperparameters"] == model.get_config()
        assert manifest["schema"]["n_input_features"] == model.n_input_features_
        assert manifest["schema"]["classes"] == [0, 1]


class TestManifestValidation:
    @pytest.fixture
    def artifact(self, fitted_models, tmp_path):
        return save_artifact(fitted_models["vae"], tmp_path / "artifact")

    def _rewrite(self, artifact, **changes):
        manifest = json.loads((artifact / "manifest.json").read_text())
        manifest.update(changes)
        (artifact / "manifest.json").write_text(json.dumps(manifest))

    def test_unknown_format_version_is_refused(self, artifact):
        self._rewrite(artifact, format_version=ARTIFACT_FORMAT_VERSION + 1)
        with pytest.raises(ArtifactError, match="format version"):
            load_artifact(artifact)

    def test_unknown_model_class_is_refused(self, artifact):
        self._rewrite(artifact, model_class="TotallyMadeUp")
        with pytest.raises(ArtifactError, match="TotallyMadeUp"):
            load_artifact(artifact)

    def test_expected_class_mismatch_is_refused(self, artifact):
        with pytest.raises(ArtifactError, match="holds a VAE"):
            load_artifact(artifact, expected_class="P3GM")
        # Both class objects and names are accepted; the right class passes.
        from repro.models import VAE

        assert isinstance(load_artifact(artifact, expected_class=VAE), VAE)

    def test_missing_manifest_key_is_refused(self, artifact):
        manifest = json.loads((artifact / "manifest.json").read_text())
        del manifest["privacy"]
        (artifact / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="privacy"):
            read_manifest(artifact)

    def test_unacceptable_hyperparameters_are_refused(self, artifact):
        manifest = json.loads((artifact / "manifest.json").read_text())
        manifest["hyperparameters"]["from_the_future"] = 42
        (artifact / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="does not accept"):
            load_artifact(artifact)

    def test_missing_weights_is_refused(self, artifact):
        (artifact / "weights.npz").unlink()
        with pytest.raises(ArtifactError, match="weights.npz"):
            load_artifact(artifact)

    def test_non_artifact_directory_is_refused(self, tmp_path):
        with pytest.raises(ArtifactError, match="manifest.json"):
            load_artifact(tmp_path)

    def test_unfitted_model_cannot_be_saved(self, tmp_path):
        from repro.models import VAE

        with pytest.raises(RuntimeError, match="not fitted"):
            save_artifact(VAE(), tmp_path / "unfitted")

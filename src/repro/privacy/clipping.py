"""Norm clipping utilities.

Clipping bounds the sensitivity of data-dependent quantities:

- per-example gradient clipping for DP-SGD (Abadi et al., Section II-D),
- row-norm clipping used before DP-PCA and DP-EM so that each record's
  contribution to covariance / sufficient statistics has sensitivity at most 1.
"""

from __future__ import annotations

import numpy as np

__all__ = ["clip_by_l2_norm", "clip_rows", "per_example_clip"]


def clip_by_l2_norm(vector: np.ndarray, max_norm: float) -> np.ndarray:
    """Scale ``vector`` so its L2 norm is at most ``max_norm`` (psi_C in the paper)."""
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    vector = np.asarray(vector, dtype=np.float64)
    norm = np.linalg.norm(vector)
    if norm <= max_norm or norm == 0.0:
        return vector
    return vector * (max_norm / norm)


def clip_rows(X: np.ndarray, max_norm: float = 1.0) -> np.ndarray:
    """Clip every row of ``X`` to L2 norm at most ``max_norm`` (vectorised)."""
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    X = np.asarray(X, dtype=np.float64)
    norms = np.linalg.norm(X, axis=1, keepdims=True)
    scale = np.minimum(1.0, max_norm / np.maximum(norms, 1e-12))
    return X * scale


def per_example_clip(grad_samples: list, max_norm: float) -> list:
    """Clip the concatenated per-example gradient of each example to ``max_norm``.

    ``grad_samples`` is a list of arrays, one per parameter, each of shape
    ``(batch, *param_shape)``.  The clipping norm is computed over the full
    per-example gradient (all parameters concatenated), exactly as DP-SGD
    requires, and the same scaling factor is applied to every parameter's
    slice for that example.

    Returns a list of clipped arrays with the same shapes.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    if not grad_samples:
        return []
    batch = grad_samples[0].shape[0]
    squared = np.zeros(batch)
    for g in grad_samples:
        if g.shape[0] != batch:
            raise ValueError("inconsistent batch dimension across grad samples")
        squared += (g.reshape(batch, -1) ** 2).sum(axis=1)
    norms = np.sqrt(squared)
    scale = np.minimum(1.0, max_norm / np.maximum(norms, 1e-12))
    clipped = []
    for g in grad_samples:
        shape = (batch,) + (1,) * (g.ndim - 1)
        clipped.append(g * scale.reshape(shape))
    return clipped

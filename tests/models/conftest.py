"""Shared fixtures for model tests: a small labelled dataset in [0, 1]."""

import numpy as np
import pytest


@pytest.fixture(scope="module")
def toy_labeled_data():
    """Two well-separated classes of 30-dimensional data scaled to [0, 1]."""
    rng = np.random.default_rng(7)
    n, d = 500, 30
    centers = np.vstack([np.full(d, 0.3), np.full(d, 0.7)])
    y = rng.integers(0, 2, n)
    X = np.clip(centers[y] + 0.08 * rng.normal(size=(n, d)), 0.0, 1.0)
    return X, y


@pytest.fixture(scope="module")
def toy_unlabeled_data(toy_labeled_data):
    return toy_labeled_data[0]

"""``repro.models`` — the generative models of the paper.

- :class:`VAE` — non-private reference model (Kingma & Welling).
- :class:`DPVAE` — the naive baseline: VAE trained end to end with DP-SGD.
- :class:`PGM` — the non-private phased generative model (Section IV).
- :class:`P3GM` — the paper's contribution: DP-PCA + DP-EM + DP-SGD phases.
- :class:`DPGM` — DP mixture of generative networks (Acs et al.) baseline.
- :class:`PrivBayes` — Bayesian-network synthesizer (Zhang et al.) baseline.
"""

from repro.models.base import GenerativeModel, LabelEncodingMixin
from repro.models.capabilities import CAPABILITY_MATRIX, Capability, capability_table
from repro.models.dp_gm import DPGM
from repro.models.dp_vae import DPVAE
from repro.models.p3gm import P3GM
from repro.models.pgm import PGM
from repro.models.privbayes import PrivBayes
from repro.models.vae import VAE

__all__ = [
    "GenerativeModel",
    "LabelEncodingMixin",
    "VAE",
    "DPVAE",
    "PGM",
    "P3GM",
    "DPGM",
    "PrivBayes",
    "Capability",
    "CAPABILITY_MATRIX",
    "capability_table",
]

"""Figure 2 — sample quality (fidelity / diversity / coverage) on simulated MNIST.

The paper's Figure 2 is a visual comparison; the harness reports the
quantitative proxies defined in ``repro.evaluation.sample_quality``.  The
expected shape: DP-VAE has the worst fidelity (noisy samples), DP-GM has the
lowest diversity (mode collapse towards centroids), and P3GM is close to the
non-private VAE on both axes.
"""

from conftest import profile_value, run_once

from repro.evaluation import format_rows, run_fig2_sample_quality


def test_fig2_sample_quality(benchmark, record_result):
    rows = run_once(
        benchmark,
        run_fig2_sample_quality,
        n_samples=profile_value(1000, 8000),
        scale=profile_value("small", "paper"),
        epsilon=1.0,
        random_state=0,
    )
    text = format_rows(rows, title="Figure 2 (proxy): sample quality on simulated MNIST, epsilon=1")
    record_result("fig2_sample_quality", text)

    by_model = {row["model"]: row for row in rows}
    # The non-private VAE produces the cleanest samples: its fidelity (distance
    # to the nearest real sample) must not be worse than the DP-trained VAE's.
    assert by_model["VAE"]["fidelity"] <= by_model["DP-VAE"]["fidelity"] + 1e-6
    # All metrics are finite and within their defined ranges.
    for row in rows:
        assert row["fidelity"] >= 0
        assert row["diversity"] >= 0
        assert 0.0 <= row["coverage"] <= 1.0

"""Batch-construction strategies for the training engine.

A sampler turns ``(n_samples, rng)`` into a stream of index arrays, one per
optimizer step.  Two strategies are provided:

- :class:`ShuffleSampler` — permute once per epoch and slice into consecutive
  batches.  Every record appears exactly once per epoch.  This is the
  batching the non-private models have always used.
- :class:`PoissonSampler` — each record enters each step's batch independently
  with probability ``sample_rate``.  Batch sizes fluctuate around
  ``sample_rate * n_samples`` and records may appear in zero or several
  batches per epoch.  This is the mechanism the subsampled-Gaussian RDP
  accountant actually analyzes, so it is the default for DP-SGD training
  (see the :mod:`repro.engine` module docstring).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.utils.validation import check_positive, check_probability

__all__ = ["BatchSampler", "ShuffleSampler", "PoissonSampler", "make_sampler"]


class BatchSampler:
    """Protocol for batch samplers used by :class:`repro.engine.Trainer`."""

    def epoch_batches(self, n_samples: int, rng: np.random.Generator) -> Iterator[np.ndarray]:
        """Yield one index array per optimizer step for a single epoch."""
        raise NotImplementedError

    def steps_per_epoch(self, n_samples: int) -> int:
        """Number of optimizer steps one epoch performs."""
        raise NotImplementedError


class ShuffleSampler(BatchSampler):
    """Shuffle-and-partition batching (one pass over the data per epoch)."""

    def __init__(self, batch_size: int):
        check_positive(batch_size, "batch_size")
        self.batch_size = int(batch_size)

    def epoch_batches(self, n_samples: int, rng) -> Iterator[np.ndarray]:
        batch_size = min(self.batch_size, n_samples)
        order = rng.permutation(n_samples)
        for start in range(0, n_samples, batch_size):
            yield order[start : start + batch_size]

    def steps_per_epoch(self, n_samples: int) -> int:
        batch_size = min(self.batch_size, n_samples)
        return int(np.ceil(n_samples / batch_size))


class PoissonSampler(BatchSampler):
    """Poisson subsampling: per-step inclusion with probability ``sample_rate``.

    Parameters
    ----------
    sample_rate:
        Probability ``B/N`` that any given record participates in a step.
    steps:
        Steps per epoch.  An "epoch" has no intrinsic meaning under Poisson
        sampling, so the caller fixes the step count — conventionally
        ``ceil(N / B)`` to match the shuffle sampler's work per epoch (and the
        step count the accountant was configured with).
    """

    def __init__(self, sample_rate: float, steps: int):
        check_probability(sample_rate, "sample_rate")
        if sample_rate == 0.0:
            raise ValueError("sample_rate must be > 0")
        check_positive(steps, "steps")
        self.sample_rate = float(sample_rate)
        self.steps = int(steps)

    def epoch_batches(self, n_samples: int, rng) -> Iterator[np.ndarray]:
        for _ in range(self.steps):
            yield np.flatnonzero(rng.random(n_samples) < self.sample_rate)

    def steps_per_epoch(self, n_samples: int) -> int:
        return self.steps


def make_sampler(kind: str, n_samples: int, batch_size: int) -> BatchSampler:
    """Build a sampler by name for a dataset of ``n_samples`` records.

    ``"shuffle"`` maps to :class:`ShuffleSampler`; ``"poisson"`` maps to
    :class:`PoissonSampler` with ``sample_rate = min(batch_size, N) / N`` and
    ``ceil(N / B)`` steps per epoch, mirroring the step count the privacy
    accountants are configured with.
    """
    if kind == "shuffle":
        return ShuffleSampler(batch_size)
    if kind == "poisson":
        check_positive(n_samples, "n_samples")
        batch = min(batch_size, n_samples)
        return PoissonSampler(batch / n_samples, int(np.ceil(n_samples / batch)))
    raise ValueError(f"sampler must be 'shuffle' or 'poisson'; got {kind!r}")

"""Versioned on-disk artifacts for trained synthesizers.

An artifact is a directory holding two or three files:

- ``manifest.json`` — the release record: artifact format version, model
  class, hyper-parameters (the model's ``get_config()``), the data schema the
  model was fitted on, the preprocessing pipeline's configuration (format
  version 2), and the ``(epsilon, delta)`` privacy guarantee actually spent.
  Everything a consumer needs to decide whether to trust and how to query the
  model, without loading any weights.
- ``weights.npz`` — the fitted state (``model.state_dict()``) as plain numpy
  arrays.  Object arrays are never written, so loading uses
  ``allow_pickle=False`` and artifacts cannot execute code on load.
- ``transformer.npz`` (optional, format version 2) — the fitted
  :class:`repro.transforms.TableTransformer` state when the model was trained
  on an encoded mixed-type table.  With it, a released model can emit
  **original-space** rows (real category labels, raw numeric ranges) from the
  artifact alone.

Format version 1 artifacts (no transformer) keep loading unchanged.
Loading refuses unknown format versions and model-class mismatches with
explicit errors rather than producing a silently wrong synthesizer.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional

import numpy as np

from repro import __version__
from repro.serving.registry import MODEL_REGISTRY, resolve_model_class

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactError",
    "load_artifact",
    "load_transformer",
    "manifest_privacy",
    "read_manifest",
    "read_state_archive",
    "save_artifact",
    "write_state_archive",
]

ARTIFACT_FORMAT_VERSION = 2
SUPPORTED_FORMAT_VERSIONS = (1, 2)
MANIFEST_FILENAME = "manifest.json"
WEIGHTS_FILENAME = "weights.npz"
TRANSFORMER_FILENAME = "transformer.npz"


class ArtifactError(RuntimeError):
    """A model artifact is missing, malformed, or incompatible."""


def write_state_archive(path, manifest: dict, state: dict, npz_name: str = WEIGHTS_FILENAME) -> Path:
    """Write the shared on-disk layout: ``manifest.json`` + one state ``.npz``.

    Both release artifacts and training checkpoints persist through this
    helper, so they share the same safety property: ``state`` must be plain
    numpy arrays (object arrays would require pickling and are refused by
    ``np.savez``'s consumers here — loading always uses ``allow_pickle=False``).
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    (path / MANIFEST_FILENAME).write_text(json.dumps(manifest, indent=2) + "\n")
    np.savez(path / npz_name, **state)
    return path


def read_state_archive(path, npz_name: str = WEIGHTS_FILENAME) -> tuple:
    """Read a ``(manifest, state)`` pair written by :func:`write_state_archive`.

    Performs only the structural half of validation (files exist, JSON parses,
    arrays load without pickling); semantic checks belong to the caller.
    """
    path = Path(path)
    manifest_path = path / MANIFEST_FILENAME
    if not manifest_path.is_file():
        raise ArtifactError(f"{path} is not a state archive: missing {MANIFEST_FILENAME}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as error:
        raise ArtifactError(f"{manifest_path} is not valid JSON: {error}") from error
    npz_path = path / npz_name
    if not npz_path.is_file():
        raise ArtifactError(f"{path} is not a state archive: missing {npz_name}")
    try:
        with np.load(npz_path, allow_pickle=False) as archive:
            state = {key: archive[key] for key in archive.files}
    except (OSError, ValueError) as error:
        raise ArtifactError(f"{npz_path} is corrupt or unreadable: {error}") from error
    return manifest, state


def _encode_float(value: float):
    """JSON-safe float: non-finite values become strings ('inf', 'nan')."""
    value = float(value)
    return value if np.isfinite(value) else repr(value)


def _decode_float(value) -> float:
    return float(value)


def _registry_name_for(model) -> Optional[str]:
    for spec in MODEL_REGISTRY.values():
        if type(model) is spec.cls:
            return spec.name
    return None


def _schema_of(model) -> dict:
    classes = getattr(model, "_classes", None)
    return {
        "n_input_features": int(model.n_input_features_),
        "classes": None if classes is None else np.asarray(classes).tolist(),
    }


def save_artifact(
    model,
    path,
    name: Optional[str] = None,
    metadata: Optional[dict] = None,
    transformer=None,
) -> Path:
    """Write a fitted synthesizer to ``path`` (a directory) and return it.

    Parameters
    ----------
    model:
        A fitted :class:`repro.models.GenerativeModel`.
    name:
        Human-readable artifact name recorded in the manifest (defaults to the
        model's registry name).
    metadata:
        Optional JSON-serialisable extras (e.g. the training dataset and seed)
        stored verbatim under the manifest's ``metadata`` key.
    transformer:
        Optional fitted :class:`repro.transforms.TableTransformer` the
        training data went through.  Persisted alongside the weights
        (config in the manifest, state in ``transformer.npz``) so ``sample``
        can emit original-space rows from the artifact alone.
    """
    path = Path(path)
    state = model.state_dict()  # raises if the model is not fitted
    epsilon, delta = model.privacy_spent()
    manifest = {
        "format_version": ARTIFACT_FORMAT_VERSION,
        "repro_version": __version__,
        "model_class": type(model).__name__,
        "name": name or _registry_name_for(model) or type(model).__name__.lower(),
        "created_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "hyperparameters": model.get_config(),
        "privacy": {"epsilon": _encode_float(epsilon), "delta": _encode_float(delta)},
        "schema": _schema_of(model),
        "transformer": None if transformer is None else transformer.get_config(),
        "state_entries": len(state),
        "metadata": metadata or {},
    }
    write_state_archive(path, manifest, state)
    if transformer is not None:
        np.savez(path / TRANSFORMER_FILENAME, **transformer.state_dict())
    return path


def read_manifest(path) -> dict:
    """Read and structurally validate an artifact's manifest."""
    path = Path(path)
    manifest_path = path / MANIFEST_FILENAME
    if not manifest_path.is_file():
        raise ArtifactError(f"{path} is not a model artifact: missing {MANIFEST_FILENAME}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as error:
        raise ArtifactError(f"{manifest_path} is not valid JSON: {error}") from error
    for key in ("format_version", "model_class", "hyperparameters", "privacy"):
        if key not in manifest:
            raise ArtifactError(f"{manifest_path} is missing required key {key!r}")
    version = manifest["format_version"]
    if version not in SUPPORTED_FORMAT_VERSIONS:
        raise ArtifactError(
            f"artifact format version {version!r} is not supported by this build "
            f"(supported: {list(SUPPORTED_FORMAT_VERSIONS)}); refusing to load {path}"
        )
    return manifest


def manifest_privacy(manifest: dict) -> tuple:
    """The ``(epsilon, delta)`` recorded in a manifest, as floats."""
    privacy = manifest["privacy"]
    return (_decode_float(privacy["epsilon"]), _decode_float(privacy["delta"]))


def load_artifact(path, expected_class=None):
    """Load a synthesizer from an artifact directory.

    Parameters
    ----------
    path:
        Artifact directory produced by :func:`save_artifact`.
    expected_class:
        Optional class (or class name) the caller requires; a mismatch raises
        :class:`ArtifactError` instead of handing back a different model type.
    """
    path = Path(path)
    manifest = read_manifest(path)
    class_name = manifest["model_class"]
    if expected_class is not None:
        expected_name = (
            expected_class if isinstance(expected_class, str) else expected_class.__name__
        )
        if class_name != expected_name:
            raise ArtifactError(
                f"artifact {path} holds a {class_name} model, not the requested "
                f"{expected_name}"
            )
    try:
        cls = resolve_model_class(class_name)
    except KeyError as error:
        raise ArtifactError(str(error)) from error

    try:
        model = cls(**manifest["hyperparameters"])
    except (TypeError, ValueError) as error:
        raise ArtifactError(
            f"artifact {path} carries hyperparameters {class_name} does not accept "
            f"(manifest written by a different build?): {error}"
        ) from error
    _, state = read_state_archive(path)
    try:
        model.load_state_dict(state)
    except (KeyError, ValueError) as error:
        raise ArtifactError(f"artifact {path} has corrupt or incompatible weights: {error}") from error
    return model


def load_transformer(path):
    """Load the fitted preprocessing pipeline of an artifact, if it has one.

    Returns a fitted :class:`repro.transforms.TableTransformer`, or ``None``
    for artifacts released without one (including every format-version-1
    artifact, which predates transformer persistence).
    """
    from repro.transforms import TableTransformer

    path = Path(path)
    manifest = read_manifest(path)
    config = manifest.get("transformer")
    if config is None:
        return None
    transformer_path = path / TRANSFORMER_FILENAME
    if not transformer_path.is_file():
        raise ArtifactError(
            f"artifact {path} declares a transformer but {TRANSFORMER_FILENAME} is missing"
        )
    try:
        transformer = TableTransformer.from_config(config)
    except (KeyError, ValueError) as error:
        raise ArtifactError(
            f"artifact {path} has an invalid transformer config: {error}"
        ) from error
    with np.load(transformer_path, allow_pickle=False) as archive:
        state = {key: archive[key] for key in archive.files}
    try:
        transformer.load_state_dict(state)
    except (KeyError, ValueError) as error:
        raise ArtifactError(
            f"artifact {path} has corrupt or incompatible transformer state: {error}"
        ) from error
    return transformer

"""Evaluation metrics used throughout the paper's experiments.

- AUROC and AUPRC for the binary tabular tasks (Tables V, VI; Figure 4),
- classification accuracy for the image tasks (Table VII; Figures 5, 7c).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy_score",
    "roc_auc_score",
    "average_precision_score",
    "precision_recall_curve",
    "roc_curve",
    "f1_score",
]


def _validate_binary(y_true, y_score):
    y_true = np.asarray(y_true)
    y_score = np.asarray(y_score, dtype=np.float64)
    if y_true.shape != y_score.shape:
        raise ValueError("y_true and y_score must have the same shape")
    labels = np.unique(y_true)
    if not np.all(np.isin(labels, [0, 1])):
        raise ValueError("binary metrics require labels in {0, 1}")
    return y_true.astype(int), y_score


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exactly matching predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    return float(np.mean(y_true == y_pred))


def roc_auc_score(y_true, y_score) -> float:
    """Area under the ROC curve via the rank (Mann–Whitney U) formulation."""
    y_true, y_score = _validate_binary(y_true, y_score)
    n_pos = int(y_true.sum())
    n_neg = len(y_true) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("ROC AUC is undefined with a single class present")
    order = np.argsort(y_score, kind="mergesort")
    ranks = np.empty(len(y_score), dtype=np.float64)
    sorted_scores = y_score[order]
    # Average ranks for ties.
    i = 0
    position = 1
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        average_rank = 0.5 * (position + position + (j - i))
        ranks[order[i : j + 1]] = average_rank
        position += j - i + 1
        i = j + 1
    rank_sum_positive = ranks[y_true == 1].sum()
    u_statistic = rank_sum_positive - n_pos * (n_pos + 1) / 2.0
    return float(u_statistic / (n_pos * n_neg))


def roc_curve(y_true, y_score):
    """Return ``(fpr, tpr, thresholds)`` sorted by decreasing threshold."""
    y_true, y_score = _validate_binary(y_true, y_score)
    order = np.argsort(-y_score, kind="mergesort")
    y_true = y_true[order]
    y_score = y_score[order]
    distinct = np.where(np.diff(y_score))[0]
    threshold_idx = np.r_[distinct, len(y_true) - 1]
    tps = np.cumsum(y_true)[threshold_idx]
    fps = 1 + threshold_idx - tps
    tpr = tps / max(tps[-1], 1)
    fpr = fps / max(fps[-1], 1)
    return np.r_[0.0, fpr], np.r_[0.0, tpr], np.r_[np.inf, y_score[threshold_idx]]


def precision_recall_curve(y_true, y_score):
    """Return ``(precision, recall, thresholds)`` for decreasing thresholds."""
    y_true, y_score = _validate_binary(y_true, y_score)
    order = np.argsort(-y_score, kind="mergesort")
    y_true = y_true[order]
    y_score = y_score[order]
    tps = np.cumsum(y_true)
    fps = np.cumsum(1 - y_true)
    precision = tps / (tps + fps)
    recall = tps / max(y_true.sum(), 1)
    distinct = np.r_[np.where(np.diff(y_score))[0], len(y_true) - 1]
    return (
        np.r_[precision[distinct][::-1], 1.0],
        np.r_[recall[distinct][::-1], 0.0],
        y_score[distinct][::-1],
    )


def average_precision_score(y_true, y_score) -> float:
    """Area under the precision–recall curve (step-wise interpolation).

    This is the AUPRC metric of Tables V/VI and Figure 4b.
    """
    precision, recall, _ = precision_recall_curve(y_true, y_score)
    # precision/recall are ordered by increasing threshold (recall decreasing).
    return float(-np.sum(np.diff(recall) * precision[:-1]))


def f1_score(y_true, y_pred) -> float:
    """Harmonic mean of precision and recall for binary predictions."""
    y_true = np.asarray(y_true).astype(int)
    y_pred = np.asarray(y_pred).astype(int)
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return float(2 * precision * recall / (precision + recall))

"""Tests for the RDP / moments / zCDP accountants and the P3GM composition."""

import math

import numpy as np
import pytest

from repro.privacy.accounting import (
    DEFAULT_ALPHAS,
    P3GMAccountant,
    PipelineBudget,
    RDPAccountant,
    baseline_p3gm_epsilon,
    calibrate_dp_sgd_sigma,
    dp_em_moment_bound,
    dp_sgd_epsilon,
    dp_sgd_moment_bound,
    moment_to_rdp,
    moments_epsilon,
    rdp_from_pure_dp,
    rdp_gaussian,
    rdp_subsampled_gaussian,
    rdp_to_dp,
    sequential_composition,
    zcdp_compose,
    zcdp_gaussian,
    zcdp_to_dp,
)


class TestRDPPrimitives:
    def test_gaussian_rdp_formula(self):
        assert rdp_gaussian(2.0, 10) == pytest.approx(10 / 8.0)

    def test_pure_dp_rdp_formula(self):
        # Small order: the paper's 2*alpha*eps^2 expression applies.
        assert rdp_from_pure_dp(0.1, 4) == pytest.approx(2 * 4 * 0.01)
        # Large order: capped at epsilon (Renyi divergence <= max divergence).
        assert rdp_from_pure_dp(0.1, 100) == pytest.approx(0.1)

    def test_subsampled_reduces_to_gaussian_at_q1(self):
        assert rdp_subsampled_gaussian(1.0, 2.0, 8) == pytest.approx(rdp_gaussian(2.0, 8))

    def test_subsampled_zero_rate_is_free(self):
        assert rdp_subsampled_gaussian(0.0, 1.0, 8) == 0.0

    def test_subsampling_amplifies_privacy(self):
        # Subsampled RDP must be far below the unsampled Gaussian RDP.
        full = rdp_gaussian(1.5, 16)
        sub = rdp_subsampled_gaussian(0.01, 1.5, 16)
        assert sub < 0.1 * full

    def test_subsampled_monotone_in_q(self):
        values = [rdp_subsampled_gaussian(q, 1.5, 8) for q in (0.001, 0.01, 0.1, 0.5)]
        assert values == sorted(values)

    def test_subsampled_monotone_in_sigma(self):
        values = [rdp_subsampled_gaussian(0.01, s, 8) for s in (4.0, 2.0, 1.0, 0.6)]
        assert values == sorted(values)

    def test_subsampled_requires_integer_alpha(self):
        with pytest.raises(ValueError):
            rdp_subsampled_gaussian(0.01, 1.0, 2.5)

    def test_rdp_to_dp_picks_minimum(self):
        alphas = [2, 4, 8]
        rdp = [1.0, 0.2, 0.5]
        eps, alpha = rdp_to_dp(rdp, alphas, delta=1e-5)
        expected = min(r + math.log(1e5) / (a - 1) for r, a in zip(rdp, alphas))
        assert eps == pytest.approx(expected)
        assert alpha in alphas


class TestRDPAccountant:
    def test_composition_is_additive(self):
        acc = RDPAccountant(alphas=(2, 4, 8))
        acc.compose_gaussian(2.0, count=3)
        np.testing.assert_allclose(
            acc.get_rdp(), [3 * rdp_gaussian(2.0, a) for a in (2, 4, 8)]
        )

    def test_epsilon_grows_with_steps(self):
        eps = []
        for steps in (10, 100, 1000):
            acc = RDPAccountant()
            acc.compose_subsampled_gaussian(0.01, 1.5, steps)
            eps.append(acc.get_epsilon(1e-5)[0])
        assert eps[0] < eps[1] < eps[2]

    def test_heterogeneous_composition(self):
        acc = RDPAccountant(alphas=(2, 8, 32))
        acc.compose_pure_dp(0.1)
        acc.compose_gaussian(5.0, count=2)
        eps, _ = acc.get_epsilon(1e-5)
        assert eps > 0

    def test_rejects_bad_alphas(self):
        with pytest.raises(ValueError):
            RDPAccountant(alphas=(1, 2))


class TestMomentsAccountant:
    def test_dp_em_bound_formula(self):
        assert dp_em_moment_bound(3, 10.0, 4) == pytest.approx(7 * 20 / 200.0)

    def test_dp_sgd_bound_positive_and_monotone_in_lambda(self):
        values = [dp_sgd_moment_bound(0.01, 2.0, lam) for lam in (2, 4, 8, 16)]
        assert all(v > 0 for v in values)
        assert values == sorted(values)

    def test_dp_sgd_bound_overflows_to_inf_not_error(self):
        import math

        assert dp_sgd_moment_bound(0.01, 1.0, 200) == math.inf

    def test_dp_sgd_bound_decreases_with_sigma(self):
        assert dp_sgd_moment_bound(0.01, 4.0, 4) < dp_sgd_moment_bound(0.01, 1.0, 4)

    def test_moment_to_rdp(self):
        order, eps = moment_to_rdp(0.5, 4)
        assert order == 5
        assert eps == pytest.approx(0.125)

    def test_moments_epsilon_conversion(self):
        lams = [1, 2, 4]
        total = [0.01, 0.05, 0.3]
        eps, lam = moments_epsilon(total, lams, 1e-5)
        expected = min((m + math.log(1e5)) / l for m, l in zip(total, lams))
        assert eps == pytest.approx(expected)
        assert lam in lams


class TestZCDP:
    def test_gaussian_rho(self):
        assert zcdp_gaussian(2.0) == pytest.approx(1 / 8.0)

    def test_compose(self):
        assert zcdp_compose([0.1, 0.2, 0.3]) == pytest.approx(0.6)

    def test_to_dp(self):
        rho = 0.05
        eps = zcdp_to_dp(rho, 1e-5)
        assert eps == pytest.approx(rho + 2 * math.sqrt(rho * math.log(1e5)))

    def test_rejects_negative_rho(self):
        with pytest.raises(ValueError):
            zcdp_to_dp(-0.1, 1e-5)


class TestSequentialComposition:
    def test_adds_up(self):
        eps, delta = sequential_composition([0.5, 0.3], [1e-6, 1e-6])
        assert eps == pytest.approx(0.8)
        assert delta == pytest.approx(2e-6)

    def test_pure_dp_default(self):
        eps, delta = sequential_composition([0.5, 0.5])
        assert delta == 0.0


class TestDPSGDCalibration:
    def test_epsilon_monotone_in_sigma(self):
        e1 = dp_sgd_epsilon(1.0, 0.01, 500, 1e-5)
        e2 = dp_sgd_epsilon(2.0, 0.01, 500, 1e-5)
        assert e2 < e1

    def test_calibration_meets_target(self):
        sigma = calibrate_dp_sgd_sigma(1.0, 0.01, 500, 1e-5)
        assert dp_sgd_epsilon(sigma, 0.01, 500, 1e-5) <= 1.0 + 1e-6
        # And it is not wastefully large: slightly less noise must exceed the target.
        assert dp_sgd_epsilon(sigma * 0.95, 0.01, 500, 1e-5) > 1.0

    def test_calibration_unreachable_raises(self):
        with pytest.raises(ValueError):
            calibrate_dp_sgd_sigma(1e-9, 0.5, 10000, 1e-5, high=5.0)


class TestP3GMAccountant:
    def make_accountant(self, **overrides):
        params = dict(
            epsilon_pca=0.1,
            sigma_em=100.0,
            em_iterations=20,
            n_components=3,
            sigma_sgd=1.5,
            sample_rate=240 / 63000,
            sgd_steps=2620,
        )
        params.update(overrides)
        return P3GMAccountant(**params)

    def test_epsilon_positive_and_finite(self):
        acc = self.make_accountant()
        eps = acc.epsilon(1e-5)
        assert 0 < eps < 50

    def test_rdp_composition_tighter_than_baseline(self):
        """Reproduces the qualitative claim of Figure 6: RDP < zCDP + MA."""
        for sigma in (1.0, 1.5, 2.0, 4.0):
            acc = self.make_accountant(sigma_sgd=sigma)
            assert acc.epsilon(1e-5) < acc.epsilon_baseline(1e-5)

    def test_paper_eq4_accounting_is_looser_but_finite(self):
        tight = self.make_accountant()
        loose = self.make_accountant(sgd_accounting="paper_eq4")
        assert tight.epsilon(1e-5) <= loose.epsilon(1e-5)
        assert loose.epsilon(1e-5) < 100

    def test_invalid_sgd_accounting_rejected(self):
        with pytest.raises(ValueError):
            self.make_accountant(sgd_accounting="bogus")

    def test_epsilon_decreases_with_more_noise(self):
        eps = [self.make_accountant(sigma_sgd=s).epsilon(1e-5) for s in (1.0, 2.0, 4.0, 8.0)]
        assert eps == sorted(eps, reverse=True)

    def test_epsilon_increases_with_steps(self):
        e_few = self.make_accountant(sgd_steps=100).epsilon(1e-5)
        e_many = self.make_accountant(sgd_steps=5000).epsilon(1e-5)
        assert e_few < e_many

    def test_components_can_be_disabled(self):
        acc = self.make_accountant(em_iterations=0, sgd_steps=0)
        eps = acc.epsilon(1e-5)
        # Only the PCA term and the delta conversion remain.
        assert eps < 2.0

    def test_calibrate_sigma_sgd_hits_target(self):
        acc = self.make_accountant()
        sigma = acc.calibrate_sigma_sgd(1.0, 1e-5)
        acc.sigma_sgd = sigma
        assert acc.epsilon(1e-5) <= 1.0 + 1e-3

    def test_calibrate_sigma_em_hits_target(self):
        acc = self.make_accountant(sigma_sgd=2.0)
        sigma_em = acc.calibrate_sigma_em(1.5, 1e-5)
        acc.sigma_em = sigma_em
        assert acc.epsilon(1e-5) <= 1.5 + 1e-3

    def test_calibrate_restores_state_on_failure(self):
        acc = self.make_accountant(epsilon_pca=5.0)  # PCA alone blows the budget
        original = acc.sigma_sgd
        with pytest.raises(ValueError):
            acc.calibrate_sigma_sgd(0.5, 1e-5)
        assert acc.sigma_sgd == original

    def test_epsilon_with_order_reports_valid_alpha(self):
        acc = self.make_accountant()
        eps, alpha = acc.epsilon_with_order(1e-5)
        assert 2 <= alpha <= acc.max_order
        assert eps == pytest.approx(acc.epsilon(1e-5))

    def test_baseline_budget_validation(self):
        with pytest.raises(ValueError):
            PipelineBudget(-1.0, 1.0, 10, 3, 1.0, 0.1, 10)

    def test_baseline_requires_valid_delta(self):
        budget = PipelineBudget(0.1, 10.0, 10, 3, 1.5, 0.01, 100)
        with pytest.raises(ValueError):
            baseline_p3gm_epsilon(budget, 0.0)

"""Experiment runners — one thin wrapper per table/figure of the paper.

Since PR 3 these are declarative: each function builds
:class:`repro.experiments.ExperimentSpec` grids and executes them through
:class:`repro.experiments.Runner`, which handles deterministic per-trial
seeding, optional process-pool parallelism, and content-addressed result
caching.  The public signatures and the returned row/curve structures are
unchanged from the original hand-rolled loops (a golden-value test pins
this), so the benchmark harness and EXPERIMENTS.md keep working as before.

Pass ``workers``/``cache_dir`` to any wrapper to parallelise or resume a
sweep, or drop down to the named specs in :mod:`repro.experiments.presets`
(e.g. ``python -m repro bench --spec fig4_epsilon_sweep``).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.runner import Runner
from repro.experiments.spec import ExperimentSpec
from repro.experiments.trials import COMPOSITION_DEFAULTS

__all__ = [
    "run_table5_nonprivate_comparison",
    "run_table6_private_tabular",
    "run_table7_image_classification",
    "run_fig2_sample_quality",
    "run_fig4_epsilon_sweep",
    "run_fig5_dimension_sweep",
    "run_fig6_composition",
    "run_fig7_learning_efficiency",
]


def _run(specs, workers: int, cache_dir):
    return Runner(workers=workers, cache_dir=cache_dir).run(specs)


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def run_table5_nonprivate_comparison(
    n_samples: int = 6000, scale: str = "small", epsilon: float = 1.0, random_state: int = 0,
    *, workers: int = 1, cache_dir=None,
) -> list:
    """Table V: VAE vs PGM vs P3GM on the (simulated) Kaggle Credit dataset."""
    spec = ExperimentSpec.from_dict(
        {
            "name": "table5_nonprivate",
            "kind": "utility",
            "models": ["VAE", "PGM", "P3GM"],
            "datasets": ["credit"],
            "epsilons": [epsilon],
            "seeds": [random_state],
            "params": {"n_samples": n_samples, "scale": scale, "n_synthetic_cap": 6000},
        }
    )
    return _run(spec, workers, cache_dir).rows()


def run_table6_private_tabular(
    datasets: Sequence[str] = ("credit", "esr", "adult", "isolet"),
    n_samples: Optional[dict] = None,
    scale: str = "small",
    epsilon: float = 1.0,
    random_state: int = 0,
    *, workers: int = 1, cache_dir=None,
) -> list:
    """Table VI: PrivBayes vs DP-GM vs P3GM vs original on four tabular datasets."""
    sizes = {"credit": 6000, "esr": 3000, "adult": 4000, "isolet": 1500}
    if n_samples:
        sizes.update(n_samples)
    common = {"sizes": sizes, "scale": scale}
    specs = (
        ExperimentSpec.from_dict(
            {
                "name": "table6_private_tabular",
                "kind": "utility",
                "models": ["PrivBayes", "DP-GM", "P3GM"],
                "datasets": list(datasets),
                "epsilons": [epsilon],
                "seeds": [random_state],
                "params": {**common, "n_synthetic_cap": 6000},
            }
        ),
        ExperimentSpec.from_dict(
            {
                "name": "table6_private_tabular",
                "kind": "original",
                "datasets": list(datasets),
                "seeds": [random_state],
                "params": common,
            }
        ),
    )
    records = _run(specs, workers, cache_dir).records
    # The paper prints each dataset's synthesizer rows followed by its
    # "original" reference row.
    rows = []
    for dataset_name in datasets:
        for record in records:
            if record["dataset"] == dataset_name and record["kind"] == "utility":
                rows.append(record["result"])
        for record in records:
            if record["dataset"] == dataset_name and record["kind"] == "original":
                rows.append(record["result"])
    return rows


def run_table7_image_classification(
    datasets: Sequence[str] = ("mnist", "fashion_mnist"),
    n_samples: int = 2500,
    scale: str = "small",
    epsilon: float = 1.0,
    random_state: int = 0,
    *, workers: int = 1, cache_dir=None,
) -> list:
    """Table VII: classification accuracy on synthetic image data."""
    spec = ExperimentSpec.from_dict(
        {
            "name": "table7_images",
            "kind": "utility",
            "models": ["VAE", "DP-GM", "PrivBayes", "P3GM"],
            "datasets": list(datasets),
            "epsilons": [epsilon],
            "seeds": [random_state],
            "params": {"n_samples": n_samples, "scale": scale},
        }
    )
    return _run(spec, workers, cache_dir).rows()


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------


def run_fig2_sample_quality(
    n_samples: int = 2000,
    scale: str = "small",
    epsilon: float = 1.0,
    random_state: int = 0,
    models: Sequence[str] = ("VAE", "DP-VAE", "DP-GM", "P3GM"),
    *, workers: int = 1, cache_dir=None,
) -> list:
    """Figure 2 proxy: fidelity/diversity/coverage of samples on simulated MNIST."""
    spec = ExperimentSpec.from_dict(
        {
            "name": "fig2_sample_quality",
            "kind": "sample_quality",
            "models": list(models),
            "datasets": ["mnist"],
            "epsilons": [epsilon],
            "seeds": [random_state],
            "params": {"n_samples": n_samples, "scale": scale},
        }
    )
    return _run(spec, workers, cache_dir).rows()


def run_fig4_epsilon_sweep(
    epsilons: Sequence[float] = (0.1, 0.3, 1.0, 3.0, 10.0),
    n_samples: int = 6000,
    scale: str = "small",
    random_state: int = 0,
    models: Sequence[str] = ("P3GM", "DP-GM", "PrivBayes"),
    include_nonprivate_reference: bool = True,
    *, workers: int = 1, cache_dir=None,
) -> list:
    """Figure 4: AUROC/AUPRC on Kaggle Credit as the privacy budget varies."""
    params = {"n_samples": n_samples, "scale": scale, "n_synthetic_cap": 6000}
    specs = []
    if include_nonprivate_reference:
        specs.append(
            ExperimentSpec.from_dict(
                {
                    "name": "fig4_epsilon_sweep",
                    "kind": "utility",
                    "models": ["PGM"],
                    "datasets": ["credit"],
                    "seeds": [random_state],
                    "params": params,
                }
            )
        )
    specs.append(
        ExperimentSpec.from_dict(
            {
                "name": "fig4_epsilon_sweep",
                "kind": "utility",
                "models": list(models),
                "datasets": ["credit"],
                "epsilons": list(epsilons),
                "seeds": [random_state],
                "params": params,
            }
        )
    )
    # One Runner.run over both blocks so the reference trial shares the pool
    # with the sweep; the reference row (epsilon=None) is repeated per epsilon
    # exactly like the paper's flat non-private line.
    records = _run(tuple(specs), workers, cache_dir).records
    rows = []
    if include_nonprivate_reference:
        reference_row = records[0]["result"]
        records = records[1:]
        for epsilon in epsilons:
            rows.append({"epsilon": epsilon, **reference_row})
    for record in records:
        rows.append({"epsilon": record["epsilon"], **record["result"]})
    return rows


def run_fig5_dimension_sweep(
    dimensions: Sequence[int] = (2, 5, 10, 30, 100),
    n_samples: int = 2500,
    scale: str = "small",
    epsilon: float = 1.0,
    random_state: int = 0,
    *, workers: int = 1, cache_dir=None,
) -> list:
    """Figure 5: P3GM accuracy on simulated MNIST as the PCA dimension varies."""
    spec = ExperimentSpec.from_dict(
        {
            "name": "fig5_dimension_sweep",
            "kind": "p3gm_dimension",
            "models": ["P3GM"],
            "datasets": ["mnist"],
            "epsilons": [epsilon],
            "seeds": [random_state],
            "grid": {"dimension": list(dimensions)},
            "params": {"n_samples": n_samples, "scale": scale},
        }
    )
    return _run(spec, workers, cache_dir).rows()


def run_fig6_composition(
    sigmas: Sequence[float] = (1.0, 1.5, 2.0, 3.0, 5.0, 8.0, 12.0),
    delta: float = COMPOSITION_DEFAULTS["delta"],
    epsilon_pca: float = COMPOSITION_DEFAULTS["epsilon_pca"],
    sigma_em: float = COMPOSITION_DEFAULTS["sigma_em"],
    em_iterations: int = COMPOSITION_DEFAULTS["em_iterations"],
    n_components: int = COMPOSITION_DEFAULTS["n_components"],
    sample_rate: float = COMPOSITION_DEFAULTS["sample_rate"],
    sgd_steps: int = COMPOSITION_DEFAULTS["sgd_steps"],
    *, workers: int = 1, cache_dir=None,
) -> list:
    """Figure 6: total epsilon under RDP vs the zCDP+MA baseline, varying sigma_s.

    This experiment is purely analytic (no training), exactly like the paper's.
    """
    spec = ExperimentSpec.from_dict(
        {
            "name": "fig6_composition",
            "kind": "composition",
            "grid": {"sigma": list(sigmas)},
            "params": {
                "delta": delta,
                "epsilon_pca": epsilon_pca,
                "sigma_em": sigma_em,
                "em_iterations": em_iterations,
                "n_components": n_components,
                "sample_rate": sample_rate,
                "sgd_steps": sgd_steps,
            },
        }
    )
    return _run(spec, workers, cache_dir).rows()


def run_fig7_learning_efficiency(
    dataset_name: str = "mnist",
    n_samples: int = 2000,
    epochs: int = 6,
    scale: str = "small",
    epsilon: float = 1.0,
    random_state: int = 0,
    *, workers: int = 1, cache_dir=None,
) -> dict:
    """Figure 7: per-epoch reconstruction loss and downstream score.

    Trains DP-VAE, P3GM(AE) and P3GM for ``epochs`` epochs and records, after
    every epoch, the reconstruction loss on the training data and the
    downstream utility of data sampled at that point (classification accuracy
    for image data, AUROC for binary data).
    """
    spec = ExperimentSpec.from_dict(
        {
            "name": "fig7_learning_efficiency",
            "kind": "learning_curve",
            "models": ["DP-VAE", "P3GM-AE", "P3GM"],
            "datasets": [dataset_name],
            "epsilons": [epsilon],
            "seeds": [random_state],
            "params": {"n_samples": n_samples, "scale": scale, "epochs": epochs},
        }
    )
    records = _run(spec, workers, cache_dir).records
    return {record["model"]: record["result"] for record in records}

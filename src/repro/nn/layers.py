"""Neural network modules built on the autograd engine.

The layer zoo is intentionally the one the paper needs: fully connected
encoders/decoders with ReLU activations (two FC layers of width 1000 per the
paper's implementation section), plus dropout for the downstream MLP
classifier.  Every layer with parameters participates in per-example gradient
capture through :meth:`Tensor.affine`.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.nn import init as init_module
from repro.nn.autograd import Tensor
from repro.utils.rng import as_generator

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Softplus",
    "Dropout",
    "Sequential",
    "MLP",
]


class Parameter(Tensor):
    """A tensor registered as a learnable parameter of a module."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class providing parameter management and train/eval switching."""

    def __init__(self):
        self.training = True

    # -- parameter traversal ---------------------------------------------------

    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its submodules."""
        seen: set[int] = set()
        for value in self.__dict__.values():
            if isinstance(value, Parameter) and id(value) not in seen:
                seen.add(id(value))
                yield value
            elif isinstance(value, Module):
                for p in value.parameters():
                    if id(p) not in seen:
                        seen.add(id(p))
                        yield p
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        for p in item.parameters():
                            if id(p) not in seen:
                                seen.add(id(p))
                                yield p

    def named_modules(self):
        """Yield ``(name, module)`` pairs of direct submodules."""
        for name, value in self.__dict__.items():
            if isinstance(value, Module):
                yield name, value
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield f"{name}.{i}", item

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    # -- train/eval ---------------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for _, module in self.named_modules():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- (de)serialisation ---------------------------------------------------------

    def state_dict(self) -> dict:
        """Flatten all parameter values into a dict of numpy arrays."""
        return {f"param_{i}": p.data.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: dict) -> None:
        params = list(self.parameters())
        if len(state) != len(params):
            raise ValueError(
                f"state dict has {len(state)} entries but module has {len(params)} parameters"
            )
        for i, p in enumerate(params):
            value = np.asarray(state[f"param_{i}"])
            if value.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for parameter {i}: {value.shape} vs {p.data.shape}"
                )
            p.data = value.copy()

    # -- call protocol ----------------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Fully connected layer ``y = x W + b`` with per-example gradient support."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None):
        super().__init__()
        rng = as_generator(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init_module.kaiming_uniform((in_features, out_features), rng))
        self.bias = Parameter(init_module.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        x = x if isinstance(x, Tensor) else Tensor(x)
        return x.affine(self.weight, self.bias)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Linear({self.in_features}, {self.out_features})"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Softplus(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.softplus()


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng=None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = as_generator(rng)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)


class Sequential(Module):
    """Container applying modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


def final_linear(module: "Module") -> "Linear":
    """Return the last :class:`Linear` layer of an MLP/Sequential.

    Used by the generative models to shrink the output layer's initial weights
    so Bernoulli decoders start near probability 0.5 — important for stable
    DP-SGD training, where recovering from a badly saturated initialisation is
    slow because every step is clipped and noised.
    """
    stack = [module]
    last = None
    while stack:
        current = stack.pop(0)
        if isinstance(current, Linear):
            last = current
        elif isinstance(current, Sequential):
            stack.extend(current.layers)
        elif isinstance(current, MLP):
            stack.append(current.net)
    if last is None:
        raise ValueError("module contains no Linear layer")
    return last


class MLP(Module):
    """A multi-layer perceptron with a configurable hidden stack.

    Matches the architecture used throughout the paper's experiments: fully
    connected layers with ReLU activations, and an optional output activation
    (``"sigmoid"`` for Bernoulli decoders, ``None`` for real-valued heads).
    """

    def __init__(
        self,
        in_features: int,
        hidden: tuple,
        out_features: int,
        output_activation: Optional[str] = None,
        dropout: float = 0.0,
        rng=None,
    ):
        super().__init__()
        rng = as_generator(rng)
        dims = [in_features, *hidden, out_features]
        layers: list[Module] = []
        for i in range(len(dims) - 1):
            layers.append(Linear(dims[i], dims[i + 1], rng=rng))
            is_last = i == len(dims) - 2
            if not is_last:
                layers.append(ReLU())
                if dropout > 0:
                    layers.append(Dropout(dropout, rng=rng))
        if output_activation == "sigmoid":
            layers.append(Sigmoid())
        elif output_activation == "tanh":
            layers.append(Tanh())
        elif output_activation == "softplus":
            layers.append(Softplus())
        elif output_activation is not None:
            raise ValueError(f"unknown output activation {output_activation!r}")
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)

"""Pre-fork pool conformance: N processes serve the same bytes as one.

The pool changes the process model, never the wire: a seeded request must
produce **bit-identical** bodies whether it is answered by the in-process
:class:`SynthesisService`, the single-process PR-5 server, or any of the
pool's forked workers — serially or under 32-way parallel fire.  The
aggregated ``/metrics`` must remain a superset of the single-process
exposition, with pool-wide totals.
"""

import json
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.server import WORKER_HEADER
from repro.serving.registry import registered_synthesizers
from server_kit import serve_pool, serve_root

N, SEED, CHUNK = 37, 11, 16
PROCESSES = 4
# Per-process synthesis slots.  The kernel's accept() load balancing is not
# exact, so give every worker enough slots that 32-way parallel fire cannot
# 429 even if one worker catches most of the connections.
WORKERS = 32

MODELS = registered_synthesizers()


@pytest.fixture(scope="module")
def pooled(mixed_artifact_root):
    with serve_pool(
        mixed_artifact_root, processes=PROCESSES, workers=WORKERS
    ) as running:
        yield running


@pytest.fixture(scope="module")
def single(mixed_artifact_root):
    """The PR-5 single-process server over the same root: the byte reference."""
    with serve_root(mixed_artifact_root, workers=4) as running:
        yield running


class TestPooledBytes:
    @pytest.mark.parametrize("name", MODELS)
    def test_ndjson_bytes_match_single_process_server(self, pooled, single, name):
        _, pool_client, _ = pooled
        _, single_client, _ = single
        got = pool_client.sample_raw(name, N, seed=SEED, chunk_size=CHUNK)
        reference = single_client.sample_raw(name, N, seed=SEED, chunk_size=CHUNK)
        assert got == reference

    @pytest.mark.parametrize("name", MODELS)
    def test_csv_bytes_match_single_process_server(self, pooled, single, name):
        _, pool_client, _ = pooled
        _, single_client, _ = single
        got = pool_client.sample_raw(
            name, N, seed=SEED, chunk_size=CHUNK, fmt="csv", labeled=True
        )
        reference = single_client.sample_raw(
            name, N, seed=SEED, chunk_size=CHUNK, fmt="csv", labeled=True
        )
        assert got == reference

    @pytest.mark.parametrize("name", MODELS)
    def test_model_space_matches_in_process_service(self, pooled, name):
        _, client, service = pooled
        got = client.sample(name, N, seed=SEED, chunk_size=CHUNK, model_space=True)
        reference = service.sample(name, N, seed=SEED, chunk_size=CHUNK)
        arr = np.array(got, dtype=np.float64)
        assert arr.shape == reference.shape
        assert np.array_equal(arr, reference)


class TestParallelDeterminism:
    def test_32_parallel_seeded_requests_equal_32_serial(self, pooled):
        _, client, _ = pooled
        body = json.dumps(
            {"n_samples": 64, "seed": 9, "chunk_size": 16, "model_space": True}
        ).encode("utf-8")

        def fire(_):
            status, headers, data = client.request(
                "POST", "/v1/models/vae/sample", body
            )
            assert status == 200
            return headers.get(WORKER_HEADER), data

        serial = [fire(i) for i in range(32)]
        with ThreadPoolExecutor(max_workers=32) as executor:
            parallel = list(executor.map(fire, range(32)))

        reference = serial[0][1]
        assert all(data == reference for _, data in serial)
        assert all(data == reference for _, data in parallel)
        # The kernel load-balanced 32 simultaneous connections across the
        # pool: more than one worker pid must have answered.
        pids = {pid for pid, _ in parallel if pid}
        assert len(pids) >= 2

    def test_every_response_names_its_worker(self, pooled):
        pool, client, _ = pooled
        status, headers, _ = client.request("GET", "/healthz")
        assert status == 200
        assert int(headers[WORKER_HEADER]) in pool.worker_pids


class TestAggregatedMetrics:
    def test_json_payload_is_superset_of_single_process_shape(self, pooled, single):
        _, pool_client, _ = pooled
        _, single_client, _ = single
        pool_client.sample("vae", 3, seed=0)
        merged = pool_client.metrics()
        reference = single_client.metrics()
        assert set(merged) >= set(reference)
        for section in ("requests", "latency_seconds", "workers", "cache"):
            assert set(merged[section]) >= set(reference[section])

    def test_pool_section_reports_every_worker(self, pooled):
        pool, client, _ = pooled
        payload = client.metrics()
        assert payload["pool"]["processes"] == PROCESSES
        assert payload["pool"]["workers"] == sorted(pool.worker_pids)

    def test_requests_total_counts_whole_pool_traffic(self, pooled):
        _, client, _ = pooled
        before = client.metrics()["requests"]["total"]
        extra = 8
        with ThreadPoolExecutor(max_workers=extra) as executor:
            list(
                executor.map(
                    lambda _: client.sample("vae", 2, seed=1), range(extra)
                )
            )
        after = client.metrics()["requests"]["total"]
        # Every request lands in the aggregate no matter which worker served
        # it (the two scrapes themselves add at least one more).
        assert after >= before + extra

    def test_prometheus_exposition_merges_worker_registries(self, pooled):
        pool, client, _ = pooled
        client.sample("vae", 3, seed=0)
        status, headers, body = client.request("GET", "/metrics?format=prometheus")
        assert status == 200
        text = body.decode("utf-8")
        assert "# TYPE repro_http_requests_total counter" in text
        assert "# TYPE repro_http_request_seconds histogram" in text
        assert "repro_service_cache_events_total" in text
        # Worker capacity is summed across the pool, proving the scrape saw
        # more than the answering process.
        for line in text.splitlines():
            if line.startswith("repro_http_worker_slots") and 'state="capacity"' in line:
                assert float(line.rsplit(" ", 1)[1]) == float(WORKERS * PROCESSES)
                break
        else:
            pytest.fail("repro_http_worker_slots capacity series missing")

    def test_registry_key_carries_merged_snapshot(self, pooled):
        _, client, _ = pooled
        client.sample("vae", 2, seed=3)
        registry = client.metrics()["registry"]
        assert "repro_http_requests_total" in registry
        family = registry["repro_http_requests_total"]
        assert family["type"] == "counter"
        total = sum(series["value"] for series in family["series"])
        assert total >= client.metrics()["requests"]["total"] - 1

"""Fixtures for engine tests: a small dataset in [0, 1]."""

import numpy as np
import pytest


@pytest.fixture(scope="module")
def toy_unlabeled_data():
    rng = np.random.default_rng(7)
    n, d = 400, 20
    centers = np.vstack([np.full(d, 0.3), np.full(d, 0.7)])
    y = rng.integers(0, 2, n)
    return np.clip(centers[y] + 0.08 * rng.normal(size=(n, d)), 0.0, 1.0)
